//! Multi-pass static analysis for RAScad specs and generated models.
//!
//! The paper's workflow is *capture spec → generate Markov models →
//! solve*. Each stage can silently accept inputs that the next stage
//! mishandles: a spec with `min_quantity > quantity` has no valid
//! model, a chain with an absorbing state has a degenerate steady
//! state, a stiff chain makes the power method crawl. This crate turns
//! those failure modes into *diagnostics* with stable `RASxxx` codes,
//! reported all at once instead of fail-fast.
//!
//! Analyses run in two tiers:
//!
//! - **Tier A** (spec level, codes `RAS001`–`RAS099`): parameter
//!   sanity, redundancy consistency, and hierarchy structure. The
//!   engine lives in [`rascad_spec::validate::analyze`] so that
//!   [`rascad_spec::SystemSpec::validate`] shares it; [`lint_spec`]
//!   wraps it in a [`LintReport`].
//! - **Tier B** (generated-model level, codes `RAS101`–`RAS198`):
//!   reachability, absorbing states, connectivity, and a stiffness
//!   heuristic over each block's CTMC — see [`tier_b`].
//! - **Tier C** (structural level, codes `RAS201`–`RAS299`): the
//!   spec's hierarchy compiled to a BDD structure function — minimal
//!   cut sets, single points of failure, structural importance, and
//!   symmetry/lumpability classes — see [`tier_c`].
//!
//! `RAS199` is the cross-tier note that Tier B/C were skipped because
//! spec-level errors blocked model generation.
//!
//! [`catalog`] documents every code with an example and a remedy;
//! [`render`] provides the human table, JSON-lines, and SARIF front
//! ends used by `rascad lint`.
//!
//! # Example
//!
//! ```
//! use rascad_lint::{lint_spec, DenyLevel};
//! use rascad_spec::{BlockParams, Diagram, GlobalParams, SystemSpec};
//!
//! let mut d = Diagram::new("Sys");
//! d.push(BlockParams::new("A", 1, 2)); // min_quantity > quantity
//! let report = lint_spec(&SystemSpec::new(d, GlobalParams::default()));
//! assert!(report.has_errors());
//! assert!(report.is_blocking(DenyLevel::Errors));
//! ```

pub mod catalog;
pub mod render;
pub mod tier_b;
pub mod tier_c;

use rascad_spec::diag::{severity_counts, Diagnostic, Severity};
use rascad_spec::SystemSpec;

/// Codes that belong to the lint driver itself rather than one tier.
pub mod codes {
    /// Later tiers skipped: spec-level errors block model generation.
    pub const TIERS_SKIPPED: &str = "RAS199";
}

/// The explicit "not analyzed" note emitted when Tier B/C were
/// requested but spec-level errors prevented model generation, so JSON
/// consumers can distinguish "clean at that tier" from "never ran".
#[must_use]
pub fn tiers_skipped_note(root: &str) -> Diagnostic {
    Diagnostic::new(
        codes::TIERS_SKIPPED,
        Severity::Info,
        root,
        "Tier B/C skipped: model not generated because spec-level errors block generation",
    )
}

/// Which severities cause a lint run to fail (exit nonzero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DenyLevel {
    /// Only error-severity findings block (the default).
    #[default]
    Errors,
    /// Warnings block too (`--deny warnings`). Info never blocks.
    Warnings,
}

/// The collected findings of a lint run, in emission order (Tier A
/// spec-walk order first, then Tier B per-block order).
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Appends findings from another pass.
    pub fn extend(&mut self, diags: Vec<Diagnostic>) {
        self.diagnostics.extend(diags);
    }

    /// Counts per severity: `(errors, warnings, infos)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        severity_counts(&self.diagnostics)
    }

    /// Whether any error-severity finding is present.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether the report fails under the given deny level.
    #[must_use]
    pub fn is_blocking(&self, deny: DenyLevel) -> bool {
        let floor = match deny {
            DenyLevel::Errors => Severity::Error,
            DenyLevel::Warnings => Severity::Warning,
        };
        self.diagnostics.iter().any(|d| d.severity >= floor)
    }

    /// Whether the report has no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs all Tier A (spec-level) analyses.
///
/// This is [`rascad_spec::validate::analyze`] wrapped in a report; use
/// [`tier_b::analyze_chain`] to extend the report with model-level
/// findings once blocks have been generated.
#[must_use]
pub fn lint_spec(spec: &SystemSpec) -> LintReport {
    let mut span = rascad_obs::span("lint.tier_a");
    span.record("blocks", spec.root.total_blocks());
    let report = LintReport { diagnostics: rascad_spec::validate::analyze(spec) };
    let (errors, warnings, infos) = report.counts();
    span.record("errors", errors);
    span.record("warnings", warnings);
    span.record("infos", infos);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::units::Hours;
    use rascad_spec::{BlockParams, Diagram, GlobalParams};

    fn spec_with(params: BlockParams) -> SystemSpec {
        let mut d = Diagram::new("Sys");
        d.push(params);
        SystemSpec::new(d, GlobalParams::default())
    }

    #[test]
    fn clean_spec_yields_empty_report() {
        let report = lint_spec(&spec_with(BlockParams::new("A", 1, 1)));
        assert!(report.is_clean());
        assert!(!report.is_blocking(DenyLevel::Warnings));
        assert_eq!(report.counts(), (0, 0, 0));
    }

    #[test]
    fn error_blocks_at_both_levels() {
        let report = lint_spec(&spec_with(BlockParams::new("A", 1, 2)));
        assert!(report.has_errors());
        assert!(report.is_blocking(DenyLevel::Errors));
        assert!(report.is_blocking(DenyLevel::Warnings));
    }

    #[test]
    fn warning_blocks_only_under_deny_warnings() {
        // MTTR >= MTBF: warning severity.
        let p = BlockParams::new("A", 1, 1).with_mtbf(Hours(1.0)).with_mttr_parts(
            rascad_spec::units::Minutes(40.0),
            rascad_spec::units::Minutes(40.0),
            rascad_spec::units::Minutes(40.0),
        );
        let report = lint_spec(&spec_with(p));
        assert!(!report.has_errors());
        assert!(!report.is_blocking(DenyLevel::Errors));
        assert!(report.is_blocking(DenyLevel::Warnings));
    }

    #[test]
    fn every_tier_a_finding_has_a_catalog_entry() {
        // Feed a spec tripping many analyses and check each emitted
        // code is documented.
        let mut d = Diagram::new("Sys");
        d.push(BlockParams::new("A", 1, 2).with_mtbf(Hours(-3.0)));
        d.push(BlockParams::new("A", 0, 0));
        let report = lint_spec(&SystemSpec::new(d, GlobalParams::default()));
        assert!(!report.is_clean());
        for diag in &report.diagnostics {
            assert!(
                catalog::lookup(diag.code).is_some(),
                "code {} missing from catalog",
                diag.code
            );
        }
    }
}
