//! Tier C: qualitative structural analysis (codes `RAS201`–`RAS299`).
//!
//! Tiers A and B check parameters and per-block chains; Tier C reasons
//! about the *structure*: which combinations of unit failures down the
//! whole system. The spec's series/parallel/k-out-of-n hierarchy is
//! compiled into a boolean failure function over one variable per
//! installed unit (a block with `quantity = N` and `min_quantity = K`
//! fails when at least `N − K + 1` of its units fail; a diagram fails
//! when any of its blocks fails — the paper's serial RBD), represented
//! as a reduced-ordered BDD ([`rascad_rbd::bdd`]). From the BDD the
//! pass derives:
//!
//! - **RAS201** — order-1 minimal cut sets: single points of failure.
//! - **RAS202** — redundancy absent from every minimal cut set up to
//!   the analysis order: sparing that low-order failures never test.
//! - **RAS203** — top-k blocks by Birnbaum structural importance at
//!   p = 1/2 (the design-search ranking hook).
//! - **RAS204** — symmetry classes of interchangeable units/blocks,
//!   each exactly lumpable (the hook for symmetry-aware state lumping).
//! - **RAS205** — a cut-set union bound on system unavailability that
//!   must dominate the exact hierarchical solve.
//!
//! All Tier C findings are informational: in the paper's serial-RBD
//! style every non-redundant block is an expected single point of
//! failure, so the value lies in the explicit, source-mapped
//! enumeration, not in blocking the build.

use std::cmp::Ordering;

use rascad_rbd::bdd::{Bdd, NodeId, FALSE};
use rascad_spec::diag::{Diagnostic, Severity};
use rascad_spec::{Block, Diagram, SystemSpec};

/// Stable Tier C diagnostic codes.
pub mod codes {
    /// Order-1 minimal cut set: one unit failure downs the system.
    pub const SINGLE_POINT_OF_FAILURE: &str = "RAS201";
    /// Redundant block absent from every analyzed minimal cut set.
    pub const IDLE_REDUNDANCY: &str = "RAS202";
    /// Top-k structural-importance ranking (Birnbaum at p = 1/2).
    pub const STRUCTURAL_IMPORTANCE: &str = "RAS203";
    /// Symmetry class of interchangeable components (exactly lumpable).
    pub const SYMMETRY_CLASS: &str = "RAS204";
    /// Cut-set unavailability upper bound vs the exact solve.
    pub const CUT_SET_BOUND: &str = "RAS205";
}

/// Default cut-set order cap (`lint --max-cut-order`).
pub const DEFAULT_MAX_CUT_ORDER: usize = 4;

/// How many blocks the RAS203 importance ranking reports.
pub const IMPORTANCE_TOP_K: usize = 5;

/// Tier C knobs.
#[derive(Debug, Clone, Copy)]
pub struct TierCOptions {
    /// Enumerate minimal cut sets up to this order (≥ 1). The BDD
    /// itself is exact; the cap bounds only the explicit enumeration.
    pub max_cut_order: usize,
    /// Blocks reported by the RAS203 importance ranking.
    pub top_importance: usize,
}

impl Default for TierCOptions {
    fn default() -> Self {
        TierCOptions { max_cut_order: DEFAULT_MAX_CUT_ORDER, top_importance: IMPORTANCE_TOP_K }
    }
}

/// Exact solver results feeding the RAS205 cross-check: the caller
/// (the CLI, or a test) solves the spec with `rascad-core` and hands
/// the measured unavailabilities over, keeping this crate free of a
/// solver dependency.
#[derive(Debug, Clone, Default)]
pub struct ExactSolve {
    /// `1 − system availability` from the exact hierarchical solve.
    pub system_unavailability: f64,
    /// `(block path, 1 − the block's own chain availability)` for
    /// every block in the hierarchy.
    pub blocks: Vec<(String, f64)>,
}

/// The RAS205 bound: the system availability is the product of every
/// block's chain availability (the paper's flat series RBD), so each
/// block is an order-1 block-level minimal cut set and Boole's union
/// bound gives `U_sys = 1 − Π(1 − u_b) ≤ Σ u_b`, always dominating the
/// exact solve.
#[must_use]
pub fn cut_set_bound(exact: &ExactSolve) -> f64 {
    exact.blocks.iter().map(|(_, u)| u).sum()
}

/// One block of the compiled structure function.
struct BlockNode<'a> {
    /// Slash path, root diagram name first.
    path: String,
    /// Enclosing scope (root diagram name or parent block path).
    parent: String,
    /// Installed units (`quantity`).
    quantity: usize,
    /// Redundancy margin `N − K`.
    margin: usize,
    /// First failure-variable index of this block's own units.
    first_var: usize,
    /// Variables spanned by the block *and its subdiagram* (the
    /// contiguous range `first_var..first_var + total_vars`).
    total_vars: usize,
    /// The spec block, for parameter-equality grouping.
    spec: &'a Block,
}

/// The spec compiled to a failure BDD plus the block/variable maps.
struct Structure<'a> {
    bdd: Bdd,
    /// Root failure function ψ (monotone increasing in unit failures).
    failure: NodeId,
    /// Blocks in depth-first walk order.
    blocks: Vec<BlockNode<'a>>,
    /// Total unit variables.
    num_vars: usize,
}

impl Structure<'_> {
    /// `var → index into blocks` for the block owning each unit.
    fn var_owner(&self) -> Vec<usize> {
        let mut owner = vec![0; self.num_vars];
        for (bi, b) in self.blocks.iter().enumerate() {
            for slot in &mut owner[b.first_var..b.first_var + b.quantity] {
                *slot = bi;
            }
        }
        owner
    }
}

/// Compiles the spec's hierarchy into a failure BDD. Variable order is
/// depth-first walk order, so a block's units (and its subdiagram's)
/// occupy one contiguous index range.
fn compile(spec: &SystemSpec) -> Structure<'_> {
    let mut bdd = Bdd::new();
    let mut blocks = Vec::new();
    let mut next_var = 0;
    let failure =
        compile_diagram(&mut bdd, &spec.root, &spec.root.name, &mut next_var, &mut blocks);
    Structure { bdd, failure, blocks, num_vars: next_var }
}

fn compile_diagram<'a>(
    bdd: &mut Bdd,
    diagram: &'a Diagram,
    prefix: &str,
    next_var: &mut usize,
    out: &mut Vec<BlockNode<'a>>,
) -> NodeId {
    let mut failure = FALSE;
    for block in &diagram.blocks {
        let path = format!("{prefix}/{}", block.params.name);
        let quantity = block.params.quantity as usize;
        let first_var = *next_var;
        *next_var += quantity;
        let unit_vars: Vec<NodeId> = (first_var..*next_var).map(|v| bdd.var(v)).collect();
        // The block fails when fewer than K units work, i.e. at least
        // N − K + 1 fail. Tier C runs on Tier-A-clean specs (1 ≤ K ≤ N);
        // saturation keeps hostile inputs from panicking.
        let need = quantity.saturating_sub(block.params.min_quantity as usize) + 1;
        let own = bdd.at_least_of(&unit_vars, need);
        let index = out.len();
        out.push(BlockNode {
            path: path.clone(),
            parent: prefix.to_string(),
            quantity,
            margin: block.params.margin() as usize,
            first_var,
            total_vars: 0,
            spec: block,
        });
        let block_failure = match &block.subdiagram {
            // A refined component is down when its own chain-level
            // failure occurs or its internals fail (the solver
            // multiplies both availabilities through).
            Some(sub) => {
                let sub_failure = compile_diagram(bdd, sub, &path, next_var, out);
                bdd.or(own, sub_failure)
            }
            None => own,
        };
        out[index].total_vars = *next_var - first_var;
        failure = bdd.or(failure, block_failure);
    }
    failure
}

/// `block` with every name cleared, recursively: two blocks compare
/// equal iff their numeric parameters and structure are identical.
fn neutralized(block: &Block) -> Block {
    let mut b = block.clone();
    b.params.name.clear();
    b.params.part_number = None;
    b.params.description = None;
    if let Some(sub) = &mut b.subdiagram {
        neutralize_diagram(sub);
    }
    b
}

fn neutralize_diagram(diagram: &mut Diagram) {
    diagram.name.clear();
    for block in &mut diagram.blocks {
        *block = neutralized(block);
    }
}

/// Minimal cut sets of the spec's structure function up to
/// `max_order`, each cut as sorted `path#unit` labels (units 1-based).
/// The boolean is true when cuts of higher order exist beyond the cap.
#[must_use]
pub fn minimal_cut_sets(spec: &SystemSpec, max_order: usize) -> (Vec<Vec<String>>, bool) {
    let mut s = compile(spec);
    let owner = s.var_owner();
    let minsol = s.bdd.minimal_solutions(s.failure);
    let (sets, truncated) = s.bdd.solutions_up_to(minsol, max_order);
    let labeled = sets
        .into_iter()
        .map(|cut| {
            cut.into_iter()
                .map(|v| {
                    let b = &s.blocks[owner[v]];
                    format!("{}#{}", b.path, v - b.first_var + 1)
                })
                .collect()
        })
        .collect();
    (labeled, truncated)
}

/// Runs every Tier C analysis over the spec's structure function.
///
/// Pass the exact solve (when available) to emit the RAS205
/// bound-vs-exact cross-check; without it the pass still reports
/// RAS201–RAS204.
#[must_use]
#[allow(clippy::cast_precision_loss)] // node and cut-set counts stay far below 2^52
pub fn analyze_structure(
    spec: &SystemSpec,
    opts: &TierCOptions,
    exact: Option<&ExactSolve>,
) -> Vec<Diagnostic> {
    let mut span = rascad_obs::span("lint.tier_c");
    rascad_obs::counter("lint.tier_c.runs", 1);

    let mut s = compile(spec);
    let owner = s.var_owner();
    let minsol = s.bdd.minimal_solutions(s.failure);
    let (cuts, truncated) = s.bdd.solutions_up_to(minsol, opts.max_cut_order.max(1));

    span.record("blocks", s.blocks.len());
    span.record("unit_vars", s.num_vars);
    span.record("bdd_nodes", s.bdd.node_count());
    span.record("cut_sets", cuts.len());
    span.record("truncated", usize::from(truncated));
    rascad_obs::record_value("lint.tier_c.bdd_nodes", s.bdd.node_count() as f64);
    rascad_obs::record_value("lint.tier_c.cut_sets", cuts.len() as f64);

    let mut diags = Vec::new();
    single_points_of_failure(&s, &owner, &cuts, &mut diags);
    idle_redundancy(&s, &cuts, opts, &mut diags);
    importance_ranking(&mut s, opts, &mut diags);
    symmetry_classes(&mut s, &mut diags);
    if let Some(exact) = exact {
        cut_set_bound_check(spec, exact, &mut diags);
    }
    diags
}

/// RAS201: one finding per block owning an order-1 minimal cut set.
fn single_points_of_failure(
    s: &Structure<'_>,
    owner: &[usize],
    cuts: &[Vec<usize>],
    diags: &mut Vec<Diagnostic>,
) {
    let mut flagged = vec![false; s.blocks.len()];
    for cut in cuts.iter().filter(|c| c.len() == 1) {
        flagged[owner[cut[0]]] = true;
    }
    for (bi, b) in s.blocks.iter().enumerate().filter(|(bi, _)| flagged[*bi]) {
        let _ = bi;
        let message = if b.quantity == 1 {
            "single point of failure: the failure of this block's only unit is an \
             order-1 minimal cut set"
                .to_string()
        } else {
            format!(
                "single point of failure: any one of the {} units failing is an \
                 order-1 minimal cut set (quantity = min_quantity leaves no margin)",
                b.quantity
            )
        };
        diags.push(Diagnostic::new(
            codes::SINGLE_POINT_OF_FAILURE,
            Severity::Info,
            &b.path,
            message,
        ));
    }
}

/// RAS202: redundant blocks none of whose units appears in any
/// enumerated minimal cut set — sparing that low-order failure
/// combinations never exercise.
fn idle_redundancy(
    s: &Structure<'_>,
    cuts: &[Vec<usize>],
    opts: &TierCOptions,
    diags: &mut Vec<Diagnostic>,
) {
    let mut in_cut = vec![false; s.num_vars];
    for &v in cuts.iter().flatten() {
        in_cut[v] = true;
    }
    for b in s.blocks.iter().filter(|b| b.margin >= 1) {
        if (b.first_var..b.first_var + b.quantity).any(|v| in_cut[v]) {
            continue;
        }
        diags.push(Diagnostic::new(
            codes::IDLE_REDUNDANCY,
            Severity::Info,
            &b.path,
            format!(
                "redundancy untested at this depth: no unit appears in any minimal \
                 cut set up to order {}; the margin of {} spare unit(s) rides out \
                 every analyzed failure combination",
                opts.max_cut_order, b.margin
            ),
        ));
    }
}

/// RAS203: the top-k blocks by per-unit Birnbaum structural importance
/// at p = 1/2 (units within a block are symmetric, so one unit stands
/// in for all).
fn importance_ranking(s: &mut Structure<'_>, opts: &TierCOptions, diags: &mut Vec<Diagnostic>) {
    if opts.top_importance == 0 {
        return;
    }
    let imp = s.bdd.birnbaum_half(s.failure, s.num_vars);
    let mut ranked: Vec<(usize, f64)> = s
        .blocks
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let unit_max =
                (b.first_var..b.first_var + b.quantity).map(|v| imp[v]).fold(0.0_f64, f64::max);
            (bi, unit_max)
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(Ordering::Equal)
            .then_with(|| s.blocks[a.0].path.cmp(&s.blocks[b.0].path))
    });
    let k = opts.top_importance.min(ranked.len());
    for (rank, (bi, value)) in ranked[..k].iter().enumerate() {
        diags.push(Diagnostic::new(
            codes::STRUCTURAL_IMPORTANCE,
            Severity::Info,
            &s.blocks[*bi].path,
            format!(
                "structural importance rank {}/{}: Birnbaum measure {:.3e} per unit \
                 at p = 1/2",
                rank + 1,
                k,
                value
            ),
        ));
    }
}

/// RAS204: symmetry classes — first the interchangeable units inside
/// each multi-unit block, then structurally identical sibling blocks.
/// Every claim is verified on the structure function itself (adjacent
/// transpositions for units, a whole-range variable swap for blocks),
/// so the note is a sound input for exact state lumping.
fn symmetry_classes(s: &mut Structure<'_>, diags: &mut Vec<Diagnostic>) {
    // (a) Units within one block: adjacent transpositions generate the
    // full symmetric group on the block's unit variables.
    for bi in 0..s.blocks.len() {
        let (path, quantity, first) =
            (s.blocks[bi].path.clone(), s.blocks[bi].quantity, s.blocks[bi].first_var);
        if quantity < 2 {
            continue;
        }
        let symmetric =
            (first..first + quantity - 1).all(|v| s.bdd.symmetric_in(s.failure, v, v + 1));
        if !symmetric {
            continue;
        }
        diags.push(Diagnostic::new(
            codes::SYMMETRY_CLASS,
            Severity::Info,
            path,
            format!(
                "symmetry class: the {quantity} units are interchangeable (verified \
                 on the structure function), so the 2^{quantity} unit-state space is \
                 exactly lumpable to {} occupancy states",
                quantity + 1
            ),
        ));
    }

    // (b) Sibling blocks with identical parameters and structure.
    let mut claimed = vec![false; s.blocks.len()];
    for i in 0..s.blocks.len() {
        if claimed[i] {
            continue;
        }
        let mut members = vec![i];
        let reference = neutralized(s.blocks[i].spec);
        // `j` indexes both `claimed` and `s.blocks`; an iterator form
        // would need a split borrow for no clarity gain.
        #[allow(clippy::needless_range_loop)]
        for j in i + 1..s.blocks.len() {
            if claimed[j]
                || s.blocks[j].parent != s.blocks[i].parent
                || s.blocks[j].total_vars != s.blocks[i].total_vars
            {
                continue;
            }
            if neutralized(s.blocks[j].spec) == reference && blocks_swap_invariant(s, i, j) {
                members.push(j);
                claimed[j] = true;
            }
        }
        if members.len() < 2 {
            continue;
        }
        let peers: Vec<&str> = members[1..].iter().map(|&m| s.blocks[m].path.as_str()).collect();
        diags.push(Diagnostic::new(
            codes::SYMMETRY_CLASS,
            Severity::Info,
            s.blocks[i].path.clone(),
            format!(
                "symmetry class: structurally identical to {} (parameters equal up \
                 to naming, swap-invariance verified on the structure function); the \
                 {} blocks are interchangeable and jointly lumpable",
                peers.join(", "),
                members.len()
            ),
        ));
    }
}

/// Whether swapping the whole variable ranges of blocks `i` and `j`
/// (same span) leaves the failure function unchanged.
fn blocks_swap_invariant(s: &mut Structure<'_>, i: usize, j: usize) -> bool {
    let (a, b) = (&s.blocks[i], &s.blocks[j]);
    let span = a.total_vars;
    if span != b.total_vars {
        return false;
    }
    let (a0, b0) = (a.first_var, b.first_var);
    let mut perm: Vec<usize> = (0..s.num_vars).collect();
    for offset in 0..span {
        perm[a0 + offset] = b0 + offset;
        perm[b0 + offset] = a0 + offset;
    }
    s.bdd.rename_monotone(s.failure, &perm) == s.failure
}

/// RAS205: the union bound over block-level cut sets must dominate the
/// exact hierarchical solve.
fn cut_set_bound_check(spec: &SystemSpec, exact: &ExactSolve, diags: &mut Vec<Diagnostic>) {
    let bound = cut_set_bound(exact);
    diags.push(Diagnostic::new(
        codes::CUT_SET_BOUND,
        Severity::Info,
        &spec.root.name,
        format!(
            "cut-set bound check: exact system unavailability {:.3e} <= {:.3e}, the \
             union bound over the {} block-level order-1 cut sets of the flat series \
             structure",
            exact.system_unavailability,
            bound,
            exact.blocks.len()
        ),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_spec::{BlockParams, GlobalParams};

    fn spec(blocks: Vec<BlockParams>) -> SystemSpec {
        let mut d = Diagram::new("Sys");
        for b in blocks {
            d.push(b);
        }
        SystemSpec::new(d, GlobalParams::default())
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn spof_reported_for_non_redundant_blocks() {
        let s = spec(vec![BlockParams::new("A", 1, 1), BlockParams::new("B", 2, 1)]);
        let diags = analyze_structure(&s, &TierCOptions::default(), None);
        let spofs: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.code == codes::SINGLE_POINT_OF_FAILURE).collect();
        assert_eq!(spofs.len(), 1);
        assert_eq!(spofs[0].path, "Sys/A");
        assert_eq!(spofs[0].severity, Severity::Info);
    }

    #[test]
    fn quantity_equals_min_quantity_is_a_spof_per_unit() {
        // 3-of-3: each of the three units is an order-1 cut.
        let s = spec(vec![BlockParams::new("Trio", 3, 3)]);
        let diags = analyze_structure(&s, &TierCOptions::default(), None);
        let spof = diags.iter().find(|d| d.code == codes::SINGLE_POINT_OF_FAILURE).unwrap();
        assert!(spof.message.contains("any one of the 3 units"), "{}", spof.message);
    }

    #[test]
    fn idle_redundancy_fires_beyond_the_order_cap() {
        // Margin 6: the smallest cut through the block has order 7.
        let s = spec(vec![BlockParams::new("Farm", 8, 2), BlockParams::new("Gate", 1, 1)]);
        let opts = TierCOptions { max_cut_order: 4, ..Default::default() };
        let diags = analyze_structure(&s, &opts, None);
        let idle = diags.iter().find(|d| d.code == codes::IDLE_REDUNDANCY).unwrap();
        assert_eq!(idle.path, "Sys/Farm");
        assert!(idle.message.contains("6 spare unit(s)"), "{}", idle.message);
        // Raising the cap past the margin clears the finding.
        let opts = TierCOptions { max_cut_order: 7, ..Default::default() };
        let diags = analyze_structure(&s, &opts, None);
        assert!(!codes_of(&diags).contains(&codes::IDLE_REDUNDANCY));
    }

    #[test]
    fn importance_ranks_the_spof_first() {
        let s = spec(vec![
            BlockParams::new("Mirrors", 2, 1),
            BlockParams::new("Spof", 1, 1),
            BlockParams::new("Bank", 4, 2),
        ]);
        let diags = analyze_structure(&s, &TierCOptions::default(), None);
        let ranked: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.code == codes::STRUCTURAL_IMPORTANCE).collect();
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].path, "Sys/Spof");
        assert!(ranked[0].message.starts_with("structural importance rank 1/3"));
    }

    #[test]
    fn symmetry_covers_units_and_identical_siblings() {
        let s = spec(vec![
            BlockParams::new("Store 1", 8, 7),
            BlockParams::new("Store 2", 8, 7),
            BlockParams::new("Head", 1, 1),
        ]);
        let diags = analyze_structure(&s, &TierCOptions::default(), None);
        let sym: Vec<&Diagnostic> =
            diags.iter().filter(|d| d.code == codes::SYMMETRY_CLASS).collect();
        // Two per-block unit classes + one sibling class.
        assert_eq!(sym.len(), 3);
        assert!(sym[0].message.contains("exactly lumpable to 9 occupancy states"));
        let sibling = sym.iter().find(|d| d.message.contains("Sys/Store 2")).unwrap();
        assert_eq!(sibling.path, "Sys/Store 1");
    }

    #[test]
    fn different_parameters_break_the_sibling_class() {
        let s = spec(vec![
            BlockParams::new("Store 1", 8, 7),
            BlockParams::new("Store 2", 8, 7).with_mtbf(rascad_spec::units::Hours(1234.0)),
        ]);
        let diags = analyze_structure(&s, &TierCOptions::default(), None);
        assert!(
            !diags
                .iter()
                .any(|d| d.code == codes::SYMMETRY_CLASS
                    && d.message.contains("structurally identical")),
            "{diags:?}"
        );
    }

    #[test]
    fn cut_set_bound_dominates_and_reports() {
        let exact = ExactSolve {
            system_unavailability: 3.9e-4,
            blocks: vec![("Sys/A".into(), 2e-4), ("Sys/B".into(), 2e-4)],
        };
        assert!(cut_set_bound(&exact) >= exact.system_unavailability);
        let s = spec(vec![BlockParams::new("A", 1, 1), BlockParams::new("B", 1, 1)]);
        let diags = analyze_structure(&s, &TierCOptions::default(), Some(&exact));
        let bound = diags.iter().find(|d| d.code == codes::CUT_SET_BOUND).unwrap();
        assert_eq!(bound.path, "Sys");
        assert!(bound.message.contains("2 block-level"), "{}", bound.message);
    }

    #[test]
    fn cut_sets_cross_validate_against_explicit_enumeration() {
        // Mixed hierarchy, 11 units: series(Gate, 2-of-3 Bank,
        // Box{ Inner 1-of-2, Core }) — small enough for the explicit
        // exponential enumerator in rascad_rbd::paths.
        let mut sub = Diagram::new("ignored");
        sub.push(BlockParams::new("Inner", 2, 1));
        sub.push(BlockParams::new("Core", 1, 1));
        let mut root = Diagram::new("Sys");
        root.push(BlockParams::new("Gate", 1, 1));
        root.push(BlockParams::new("Bank", 3, 2));
        root.push_block(rascad_spec::Block::with_subdiagram(BlockParams::new("Box", 2, 1), sub));
        let spec = SystemSpec::new(root, GlobalParams::default());

        // Reference: the same structure as an explicit RBD over unit
        // components (ids in walk order, as compile() assigns them).
        use rascad_rbd::Rbd;
        let reference = Rbd::series(vec![
            Rbd::component(0),                                    // Gate
            Rbd::k_of_n(2, (1..4).map(Rbd::component).collect()), // Bank
            Rbd::series(vec![
                // Box: its own 1-of-2 units AND its internals must work.
                Rbd::k_of_n(1, vec![Rbd::component(4), Rbd::component(5)]),
                Rbd::k_of_n(1, vec![Rbd::component(6), Rbd::component(7)]), // Inner
                Rbd::component(8),                                          // Core
            ]),
        ]);
        let mut expected: Vec<Vec<usize>> = rascad_rbd::paths::minimal_cut_sets(&reference)
            .into_iter()
            .map(|s| s.into_iter().collect())
            .collect();
        expected.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));

        let (cuts, truncated) = minimal_cut_sets(&spec, 16);
        assert!(!truncated);
        // Map labels back to variable indices for the comparison.
        let labels = [
            "Sys/Gate#1",
            "Sys/Bank#1",
            "Sys/Bank#2",
            "Sys/Bank#3",
            "Sys/Box#1",
            "Sys/Box#2",
            "Sys/Box/Inner#1",
            "Sys/Box/Inner#2",
            "Sys/Box/Core#1",
        ];
        let got: Vec<Vec<usize>> = cuts
            .iter()
            .map(|cut| cut.iter().map(|l| labels.iter().position(|x| x == l).unwrap()).collect())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn subdiagram_blocks_get_their_own_variables_and_findings() {
        let mut sub = Diagram::new("ignored");
        sub.push(BlockParams::new("Engine", 1, 1));
        let mut root = Diagram::new("Sys");
        root.push_block(rascad_spec::Block::with_subdiagram(BlockParams::new("Server", 1, 1), sub));
        let spec = SystemSpec::new(root, GlobalParams::default());
        let diags = analyze_structure(&spec, &TierCOptions::default(), None);
        let spof_paths: Vec<&str> = diags
            .iter()
            .filter(|d| d.code == codes::SINGLE_POINT_OF_FAILURE)
            .map(|d| d.path.as_str())
            .collect();
        assert_eq!(spof_paths, vec!["Sys/Server", "Sys/Server/Engine"]);
    }
}
