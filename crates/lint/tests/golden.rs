//! Golden-file tests: one fixture spec per diagnostic code.
//!
//! Each `tests/fixtures/RASxxx.rascad` trips exactly the code it is
//! named after; the committed `RASxxx.txt` (human table) and
//! `RASxxx.jsonl` (JSON lines) files pin the exact rendering —
//! message wording, source positions, severity, and summary counts.
//! Codes the DSL cannot express (RAS014 needs an API-built spec; the
//! Tier B codes need hand-built chains) are pinned from in-code
//! constructions against the same golden pair.
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p rascad-lint --test golden
//! ```

use std::path::{Path, PathBuf};

use rascad_lint::{catalog, lint_spec, render, tier_b, tier_c, LintReport};
use rascad_markov::CtmcBuilder;
use rascad_spec::diag::Severity;

/// Tier A codes with a DSL fixture (all except RAS014, which the DSL
/// parser makes unreachable by auto-provisioning redundancy defaults).
const DSL_CODES: &[&str] = &[
    "RAS001", "RAS002", "RAS003", "RAS004", "RAS005", "RAS006", "RAS007", "RAS008", "RAS009",
    "RAS010", "RAS011", "RAS012", "RAS013", "RAS015", "RAS016", "RAS017", "RAS018", "RAS019",
    "RAS020", "RAS021",
];

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Compares `rendered` against the golden file, or rewrites the golden
/// when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, extension: &str, rendered: &str) {
    let path = fixtures_dir().join(format!("{name}.{extension}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {}: {e}; run with UPDATE_GOLDEN=1", path.display())
    });
    assert_eq!(rendered, expected, "golden mismatch for {name}.{extension}");
}

/// Asserts the report contains `code` with its cataloged severity, and
/// pins both renderings.
fn check_report(name: &str, code: &str, report: &LintReport) {
    let entry = catalog::lookup(code).unwrap_or_else(|| panic!("{code} not in catalog"));
    let found = report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("{name}: {code} not emitted; got {:?}", report.diagnostics));
    assert_eq!(found.severity, entry.severity, "{name}: severity drifted from catalog");
    check_golden(name, "txt", &render::render_human(report));
    check_golden(name, "jsonl", &render::render_json(report));
}

#[test]
fn dsl_fixtures_match_goldens() {
    for code in DSL_CODES {
        let src = std::fs::read_to_string(fixtures_dir().join(format!("{code}.rascad")))
            .unwrap_or_else(|e| panic!("{code}: {e}"));
        let spec = rascad_spec::SystemSpec::from_dsl(&src)
            .unwrap_or_else(|e| panic!("{code} fixture must parse: {e}"));
        let mut report = lint_spec(&spec);
        rascad_spec::dsl::source_map::annotate(&mut report.diagnostics, &src);
        check_report(code, code, &report);
    }
}

#[test]
fn dsl_fixtures_trip_exactly_their_own_code() {
    // Each fixture isolates one analysis: no stray findings.
    for code in DSL_CODES {
        let src = std::fs::read_to_string(fixtures_dir().join(format!("{code}.rascad"))).unwrap();
        let spec = rascad_spec::SystemSpec::from_dsl(&src).unwrap();
        let report = lint_spec(&spec);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.iter().all(|c| c == code), "{code}: got {codes:?}");
        assert!(!codes.is_empty(), "{code}: no findings");
    }
}

#[test]
fn dsl_fixture_positions_resolve() {
    // Spot-check that annotation finds the declaring line: in every
    // fixture the offending block is declared past line 1 (fixtures
    // start with a comment).
    for code in ["RAS006", "RAS017", "RAS020"] {
        let src = std::fs::read_to_string(fixtures_dir().join(format!("{code}.rascad"))).unwrap();
        let spec = rascad_spec::SystemSpec::from_dsl(&src).unwrap();
        let mut report = lint_spec(&spec);
        rascad_spec::dsl::source_map::annotate(&mut report.diagnostics, &src);
        let d = report.diagnostics.iter().find(|d| d.code == code).unwrap();
        assert!(d.line.is_some_and(|l| l > 1), "{code}: no position: {d}");
    }
}

#[test]
fn ras014_from_api_matches_golden() {
    // The DSL parser auto-provisions redundancy defaults, so a
    // redundant block without parameters only exists via the API.
    let mut d = rascad_spec::Diagram::new("Plant");
    let mut p = rascad_spec::BlockParams::new("Pump", 2, 1);
    p.redundancy = None;
    d.push(p);
    let spec = rascad_spec::SystemSpec::new(d, rascad_spec::GlobalParams::default());
    check_report("RAS014", "RAS014", &lint_spec(&spec));
}

#[test]
fn tier_b_broken_chain_matches_golden() {
    // Three states, no transitions: unreachable + absorbing ×3 +
    // disconnected, all errors (RAS101–RAS103).
    let mut b = CtmcBuilder::new();
    b.add_state("Ok", 1.0);
    b.add_state("PF1", 0.0);
    b.add_state("PF2", 0.0);
    let chain = b.build().unwrap();
    let mut report = LintReport::new();
    report.extend(tier_b::analyze_chain("Plant/Pump", &chain));
    for code in ["RAS101", "RAS102", "RAS103"] {
        let entry = catalog::lookup(code).unwrap();
        assert_eq!(entry.severity, Severity::Error);
        assert!(report.diagnostics.iter().any(|d| d.code == code), "{code} missing");
    }
    check_golden("tier_b_broken", "txt", &render::render_human(&report));
    check_golden("tier_b_broken", "jsonl", &render::render_json(&report));
}

#[test]
fn tier_b_stiff_chain_matches_golden() {
    // Exit-rate ratio exactly at the warn threshold (inclusive).
    let mut b = CtmcBuilder::new();
    let up = b.add_state("Ok", 1.0);
    let down = b.add_state("Down", 0.0);
    b.add_transition(up, down, 1.0);
    b.add_transition(down, up, tier_b::STIFFNESS_WARN_RATIO);
    let chain = b.build().unwrap();
    let mut report = LintReport::new();
    report.extend(tier_b::analyze_chain("Plant/Pump", &chain));
    check_report("tier_b_stiff", "RAS104", &report);
}

#[test]
fn tier_b_stiffness_note_matches_golden() {
    let mut b = CtmcBuilder::new();
    let up = b.add_state("Ok", 1.0);
    let down = b.add_state("Down", 0.0);
    b.add_transition(up, down, 1.0);
    b.add_transition(down, up, tier_b::STIFFNESS_INFO_RATIO);
    let chain = b.build().unwrap();
    let mut report = LintReport::new();
    report.extend(tier_b::analyze_chain("Plant/Pump", &chain));
    check_report("tier_b_note", "RAS105", &report);
}

#[test]
fn tier_b_large_state_space_matches_golden() {
    // Birth–death chain exactly at the sparse threshold, with a benign
    // exit-rate spread so RAS106 is the only finding. The probe output
    // embedded in the message (sweep cap, scaled residual) is
    // deterministic, so it golden-pins cleanly.
    let levels = tier_b::SPARSE_STATE_THRESHOLD - 1;
    let mut b = CtmcBuilder::new();
    for j in 0..=levels {
        b.add_state(format!("L{j}"), if j == 0 { 1.0 } else { 0.0 });
    }
    #[allow(clippy::cast_precision_loss)]
    for j in 0..levels {
        b.add_transition(j, j + 1, (levels - j) as f64 * 1e-4);
        b.add_transition(j + 1, j, (j + 1) as f64 * 0.1);
    }
    let chain = b.build().unwrap();
    let mut report = LintReport::new();
    report.extend(tier_b::analyze_chain("Plant/Shelf", &chain));
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["RAS106"], "fixture must isolate RAS106");
    check_report("tier_b_large", "RAS106", &report);
}

#[test]
fn tiers_skipped_note_matches_golden() {
    // The driver appends the RAS199 note when Tier B/C were requested
    // but Tier A errors block model generation.
    let src = std::fs::read_to_string(fixtures_dir().join("RAS199.rascad")).unwrap();
    let spec = rascad_spec::SystemSpec::from_dsl(&src).unwrap();
    let mut report = lint_spec(&spec);
    assert!(report.has_errors(), "fixture must trip a Tier A error");
    report.extend(vec![rascad_lint::tiers_skipped_note(&spec.root.name)]);
    rascad_spec::dsl::source_map::annotate(&mut report.diagnostics, &src);
    check_report("RAS199", "RAS199", &report);
}

#[test]
fn tier_c_structural_fixture_matches_goldens() {
    let src = std::fs::read_to_string(fixtures_dir().join("tier_c_edge.rascad")).unwrap();
    let spec = rascad_spec::SystemSpec::from_dsl(&src).unwrap();
    assert!(lint_spec(&spec).is_clean(), "fixture must pass Tier A");

    let sol = rascad_core::solve_spec(&spec).unwrap();
    let exact = tier_c::ExactSolve {
        system_unavailability: 1.0 - sol.system.availability,
        blocks: sol
            .blocks
            .iter()
            .map(|b| (b.path.clone(), 1.0 - b.measures.availability))
            .collect(),
    };
    let mut report = LintReport::new();
    report.extend(tier_c::analyze_structure(&spec, &tier_c::TierCOptions::default(), Some(&exact)));
    rascad_spec::dsl::source_map::annotate(&mut report.diagnostics, &src);

    // All five Tier C codes fire on this one fixture, at their
    // cataloged severities, with resolved source positions.
    for code in ["RAS201", "RAS202", "RAS203", "RAS204", "RAS205"] {
        let entry = catalog::lookup(code).unwrap();
        let found = report
            .diagnostics
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("{code} not emitted: {:?}", report.diagnostics));
        assert_eq!(found.severity, entry.severity, "{code}: severity drifted");
        assert!(found.line.is_some(), "{code}: no source position: {found}");
    }
    // The SPOF maps to the Uplink declaration (line 6, name column).
    let spof = report.diagnostics.iter().find(|d| d.code == "RAS201").unwrap();
    assert_eq!(spof.path, "Edge/Uplink");
    assert_eq!((spof.line, spof.column), (Some(6), Some(11)));

    check_golden("tier_c_edge", "txt", &render::render_human(&report));
    check_golden("tier_c_edge", "jsonl", &render::render_json(&report));
    check_golden(
        "tier_c_edge",
        "sarif",
        &render::render_sarif(&report, Some("tests/fixtures/tier_c_edge.rascad")),
    );
}

#[test]
fn every_cataloged_code_is_golden_tested() {
    let covered: Vec<&str> = DSL_CODES
        .iter()
        .copied()
        .chain([
            "RAS014", "RAS101", "RAS102", "RAS103", "RAS104", "RAS105", "RAS106", "RAS199",
            "RAS201", "RAS202", "RAS203", "RAS204", "RAS205",
        ])
        .collect();
    for entry in catalog::CATALOG {
        assert!(covered.contains(&entry.code), "{} has no golden coverage", entry.code);
    }
}
