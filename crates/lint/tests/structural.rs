//! Tier C structural-analysis properties over every bundled model.
//!
//! The RAS205 contract — the cut-set union bound dominates the exact
//! hierarchical solve — is checked here for each spec under `specs/`
//! and each `rascad-library` model, so a generator or solver change
//! that breaks the bound fails `cargo test`, not just ci.sh.

use rascad_lint::tier_c::{self, ExactSolve, TierCOptions};
use rascad_spec::{Severity, SystemSpec};

fn bundled_specs() -> Vec<(String, SystemSpec)> {
    let specs_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&specs_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rascad") {
            let text = std::fs::read_to_string(&path).unwrap();
            let spec =
                SystemSpec::from_dsl(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            out.push((path.display().to_string(), spec));
        }
    }
    assert!(!out.is_empty(), "no bundled specs found in {}", specs_dir.display());
    out
}

fn library_models() -> Vec<(String, SystemSpec)> {
    vec![
        ("library:datacenter".into(), rascad_library::datacenter::data_center()),
        ("library:e10000".into(), rascad_library::e10000::e10000()),
        (
            "library:cluster".into(),
            rascad_library::cluster::two_node_cluster(
                rascad_library::cluster::ClusterConfig::default(),
            ),
        ),
        ("library:workgroup".into(), rascad_library::workgroup::workgroup()),
    ]
}

fn exact_solve(spec: &SystemSpec) -> ExactSolve {
    let sol = rascad_core::solve_spec(spec).unwrap();
    ExactSolve {
        system_unavailability: 1.0 - sol.system.availability,
        blocks: sol
            .blocks
            .iter()
            .map(|b| (b.path.clone(), 1.0 - b.measures.availability))
            .collect(),
    }
}

/// RAS205: on every bundled model the union bound over block-level cut
/// sets is an upper bound on the exact solved unavailability.
#[test]
fn cut_set_bound_dominates_exact_solve_on_all_bundled_models() {
    for (name, spec) in bundled_specs().into_iter().chain(library_models()) {
        let exact = exact_solve(&spec);
        let bound = tier_c::cut_set_bound(&exact);
        assert!(
            bound >= exact.system_unavailability,
            "{name}: bound {bound:.6e} < exact {:.6e}",
            exact.system_unavailability
        );
        // And the analysis itself reports the relation as RAS205.
        let diags = tier_c::analyze_structure(&spec, &TierCOptions::default(), Some(&exact));
        assert!(
            diags.iter().any(|d| d.code == tier_c::codes::CUT_SET_BOUND),
            "{name}: no RAS205 emitted"
        );
    }
}

/// Tier C never blocks bundled models: all findings are informational,
/// so `lint --tier-c --deny warnings` stays green in ci.sh.
#[test]
fn bundled_models_tier_c_findings_are_informational() {
    for (name, spec) in bundled_specs().into_iter().chain(library_models()) {
        let exact = exact_solve(&spec);
        for d in tier_c::analyze_structure(&spec, &TierCOptions::default(), Some(&exact)) {
            assert_eq!(d.severity, Severity::Info, "{name}: {d}");
        }
    }
}

/// Every order-1 cut reported on the bundled specs really is one: the
/// structure function evaluates to "failed" with only that unit down.
#[test]
fn order_one_cuts_on_bundled_specs_are_genuine() {
    for (name, spec) in bundled_specs() {
        let (cuts, _) = tier_c::minimal_cut_sets(&spec, 1);
        for cut in &cuts {
            assert_eq!(cut.len(), 1, "{name}: non-singleton at order 1: {cut:?}");
        }
        // The known SPOFs of the bundled specs surface here.
        let labels: Vec<&str> = cuts.iter().map(|c| c[0].as_str()).collect();
        if name.ends_with("web_service.rascad") {
            assert!(labels.contains(&"Web Service/Database#1"), "{labels:?}");
        }
        if name.ends_with("edge_cache.rascad") {
            assert!(labels.contains(&"Edge Cache/Uplink#1"), "{labels:?}");
        }
    }
}
