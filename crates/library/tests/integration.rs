//! Cross-model checks over the whole library.

use rascad_core::solve_spec;
use rascad_library::{cluster, datacenter, e10000, workgroup};
use rascad_spec::SystemSpec;

fn all_models() -> Vec<(&'static str, SystemSpec)> {
    vec![
        ("datacenter", datacenter::data_center()),
        ("e10000", e10000::e10000()),
        ("e10000-stripped", e10000::e10000_no_redundancy()),
        ("cluster", cluster::two_node_cluster(cluster::ClusterConfig::default())),
        ("workgroup", workgroup::workgroup()),
    ]
}

#[test]
fn every_model_validates_solves_and_roundtrips() {
    for (name, spec) in all_models() {
        spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let sol = solve_spec(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            sol.system.availability > 0.9 && sol.system.availability < 1.0,
            "{name}: availability {}",
            sol.system.availability
        );
        // DSL round trip.
        let again = SystemSpec::from_dsl(&spec.to_dsl()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(spec, again, "{name}");
        // JSON round trip.
        let via_json = SystemSpec::from_json(&spec.to_json().unwrap())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(spec, via_json, "{name}");
    }
}

#[test]
fn availability_ordering_across_the_product_line() {
    let solve = |s: &SystemSpec| solve_spec(s).unwrap().system.yearly_downtime_minutes;
    let e10k = solve(&e10000::e10000());
    let stripped = solve(&e10000::e10000_no_redundancy());
    let wg = solve(&workgroup::workgroup());
    // High-end beats low-end; stripping redundancy hurts the high-end
    // machine severely.
    assert!(e10k < wg, "e10000 {e10k} vs workgroup {wg}");
    assert!(stripped > 2.0 * e10k, "stripped {stripped} vs full {e10k}");
}

#[test]
fn every_model_measures_are_finite_and_ordered() {
    for (name, spec) in all_models() {
        let m = solve_spec(&spec).unwrap().system;
        assert!(m.mtbf_hours.is_finite() && m.mtbf_hours > 0.0, "{name}");
        assert!(m.mttf_hours.is_finite() && m.mttf_hours > 0.0, "{name}");
        // First failure comes no later than the steady-state cycle.
        assert!(
            m.mttf_hours <= m.mtbf_hours * 1.5,
            "{name}: {0} vs {1}",
            m.mttf_hours,
            m.mtbf_hours
        );
        assert!(m.interval_availability >= m.availability - 1e-9, "{name}");
        assert!((0.0..=1.0).contains(&m.reliability_at_mission), "{name}");
    }
}

#[test]
fn component_database_values_are_physical() {
    let db = rascad_library::ComponentDb::embedded();
    for r in db.records() {
        assert!(r.mtbf.0 >= 1_000.0, "{}: implausibly low MTBF", r.name);
        assert!(r.transient_fit.0 >= 0.0, "{}", r.name);
        let mttr_minutes = r.diagnosis.0 + r.corrective.0 + r.verification.0;
        assert!(
            mttr_minutes > 0.0 && mttr_minutes < 24.0 * 60.0,
            "{}: MTTR {mttr_minutes} min",
            r.name
        );
    }
}
