//! RAID array spec builders.

use rascad_spec::units::{Hours, Minutes};
use rascad_spec::{Block, BlockParams, Diagram, RedundancyParams, Scenario};

use crate::components::ComponentDb;

/// Builds a RAID-1 (mirrored pair) block: 2 drives, 1 required,
/// transparent recovery (the mirror absorbs the failure) and
/// transparent repair (hot-pluggable drives with automatic resync).
pub fn raid1(name: impl Into<String>) -> Block {
    let db = ComponentDb::embedded();
    let drive = db.find("Boot Drive").expect("embedded record");
    let mut params = drive.block(2, 1);
    params.name = name.into();
    params.redundancy = Some(RedundancyParams {
        p_latent_fault: 0.02,
        mttdlf: Hours(24.0),
        recovery: Scenario::Transparent,
        failover_time: Minutes(0.0),
        p_spf: 0.005,
        spf_recovery_time: Minutes(20.0),
        repair: Scenario::Transparent,
        reintegration_time: Minutes(0.0),
    });
    Block::leaf(params)
}

/// Builds a RAID-5 array block: `disks` drives with one parity drive
/// (`disks − 1` required). Recovery is transparent (parity absorbs one
/// failure); repair is transparent (hot-plug rebuild).
///
/// # Panics
///
/// Panics if `disks < 3` (RAID-5 needs at least three drives).
pub fn raid5(name: impl Into<String>, disks: u32) -> Block {
    assert!(disks >= 3, "raid5 needs at least 3 disks");
    let db = ComponentDb::embedded();
    let drive = db.find("Disk Drive").expect("embedded record");
    let mut params = drive.block(disks, disks - 1);
    params.name = name.into();
    params.redundancy = Some(RedundancyParams {
        p_latent_fault: 0.05,
        mttdlf: Hours(48.0),
        recovery: Scenario::Transparent,
        failover_time: Minutes(0.0),
        p_spf: 0.01,
        spf_recovery_time: Minutes(30.0),
        repair: Scenario::Transparent,
        reintegration_time: Minutes(0.0),
    });
    Block::leaf(params)
}

/// Builds a full storage-array subsystem: a controller pair in front of
/// a RAID-5 disk group, as a diagram.
pub fn storage_array(name: impl Into<String>, disks: u32) -> Diagram {
    let db = ComponentDb::embedded();
    let mut d = Diagram::new(name);
    let mut controller = db.find("Storage Controller").expect("embedded record").block(2, 1);
    controller.redundancy = Some(RedundancyParams {
        p_latent_fault: 0.02,
        mttdlf: Hours(24.0),
        recovery: Scenario::Nontransparent,
        failover_time: Minutes(2.0),
        p_spf: 0.01,
        spf_recovery_time: Minutes(15.0),
        repair: Scenario::Transparent,
        reintegration_time: Minutes(0.0),
    });
    d.push(controller);
    d.push_block(raid5("Disk Group", disks));
    d
}

/// Convenience: block parameters for a non-redundant component drawn
/// from the embedded database.
///
/// # Panics
///
/// Panics if `fru` is not in the embedded database.
#[must_use]
pub fn single(fru: &str) -> BlockParams {
    ComponentDb::embedded().find(fru).unwrap_or_else(|| panic!("unknown FRU {fru}")).block(1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::solve_spec;
    use rascad_spec::{GlobalParams, SystemSpec};

    #[test]
    fn raid1_is_redundant_and_solvable() {
        let mut d = Diagram::new("Test");
        d.push_block(raid1("Mirror"));
        let spec = SystemSpec::new(d, GlobalParams::default());
        let sol = solve_spec(&spec).unwrap();
        // A mirrored pair should be very available.
        assert!(sol.system.availability > 0.999999);
    }

    #[test]
    fn raid5_tolerates_one_disk() {
        let b = raid5("Array", 6);
        assert_eq!(b.params.quantity, 6);
        assert_eq!(b.params.min_quantity, 5);
        assert!(b.params.is_redundant());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn raid5_minimum_size() {
        let _ = raid5("Tiny", 2);
    }

    #[test]
    fn bigger_raid5_groups_are_less_available() {
        // More disks under the same single-parity protection = more
        // exposure.
        let avail = |disks| {
            let mut d = Diagram::new("T");
            d.push_block(raid5("A", disks));
            solve_spec(&SystemSpec::new(d, GlobalParams::default())).unwrap().system.availability
        };
        assert!(avail(4) > avail(12));
    }

    #[test]
    fn storage_array_diagram_solves() {
        let mut root = Diagram::new("Root");
        root.push_block(Block::with_subdiagram(
            BlockParams::new("Storage", 1, 1).with_mtbf(Hours(1e9)),
            storage_array("Array Internals", 8),
        ));
        let spec = SystemSpec::new(root, GlobalParams::default());
        let sol = solve_spec(&spec).unwrap();
        assert!(sol.system.availability > 0.9999);
        assert_eq!(sol.blocks.len(), 3); // Storage + controller + disk group
    }
}
