//! The "Data Center System" model of the paper's Figures 1–2.
//!
//! Level 1 (Figure 1) has four blocks: *Server Box* (dark — it has a
//! subdiagram), *Boot Drives, RAID1*, *Storage 1, RAID5*, and
//! *Storage 2, RAID5*. Level 2 (Figure 2) is the Server Box subdiagram
//! with 19 blocks (System Board, CPU Module, …).

use rascad_spec::units::{Hours, Minutes};
use rascad_spec::{
    Block, BlockParams, Diagram, GlobalParams, RedundancyParams, Scenario, SystemSpec,
};

use crate::components::ComponentDb;
use crate::storage::{raid1, raid5};

/// Builds the complete two-level Data Center System specification.
#[must_use]
pub fn data_center() -> SystemSpec {
    let mut root = Diagram::new("Data Center System");
    root.push_block(Block::with_subdiagram(server_box_params(), server_box_subdiagram()));
    root.push_block({
        let mut b = raid1("Boot Drives, RAID1");
        b.params.service_response = Hours(4.0);
        b
    });
    root.push_block({
        let mut b = raid5("Storage 1, RAID5", 8);
        b.params.service_response = Hours(4.0);
        b
    });
    root.push_block({
        let mut b = raid5("Storage 2, RAID5", 8);
        b.params.service_response = Hours(4.0);
        b
    });
    rascad_obs::counter("library.specs_built", 1);
    SystemSpec::new(root, globals())
}

/// Global parameters used by the data-center model.
#[must_use]
pub fn globals() -> GlobalParams {
    GlobalParams {
        reboot_time: Minutes(10.0),
        mttm: Hours(48.0),
        mttrfid: Hours(8.0),
        mission_time: Hours(Hours::PER_YEAR),
    }
}

/// The enclosure-level parameters of the Server Box block. The box
/// itself (chassis, interconnect) contributes little; the subdiagram
/// carries the content.
fn server_box_params() -> BlockParams {
    BlockParams::new("Server Box", 1, 1)
        .with_part_number("E6500")
        .with_description("high-end server enclosure")
        .with_mtbf(Hours(5_000_000.0))
        .with_mttr_parts(Minutes(30.0), Minutes(60.0), Minutes(30.0))
        .with_service_response(Hours(4.0))
        .with_p_correct_diagnosis(0.99)
}

/// The 19-block Server Box subdiagram of Figure 2.
#[must_use]
pub fn server_box_subdiagram() -> Diagram {
    let db = ComponentDb::embedded();
    let mut d = Diagram::new("Server Box Internals");

    // Helper for redundancy parameter sets.
    let hot_swap_transparent = RedundancyParams {
        p_latent_fault: 0.02,
        mttdlf: Hours(24.0),
        recovery: Scenario::Transparent,
        failover_time: Minutes(0.0),
        p_spf: 0.005,
        spf_recovery_time: Minutes(15.0),
        repair: Scenario::Transparent,
        reintegration_time: Minutes(0.0),
    };
    let reboot_recovery = RedundancyParams {
        p_latent_fault: 0.05,
        mttdlf: Hours(48.0),
        recovery: Scenario::Nontransparent,
        failover_time: Minutes(10.0),
        p_spf: 0.01,
        spf_recovery_time: Minutes(30.0),
        repair: Scenario::Nontransparent,
        reintegration_time: Minutes(10.0),
    };

    let mut add = |name: &str, n: u32, k: u32, red: Option<RedundancyParams>, tresp: f64| {
        let mut b = db.find(name).unwrap_or_else(|| panic!("unknown FRU {name}")).block(n, k);
        if let Some(r) = red {
            b.redundancy = Some(r);
        }
        b.service_response = Hours(tresp);
        d.push(b);
    };

    // 19 blocks: the compute complex, power/cooling, control, and I/O.
    add("System Board", 4, 3, Some(reboot_recovery), 4.0);
    add("CPU Module", 8, 6, Some(reboot_recovery), 4.0);
    add("Memory Module", 16, 15, Some(reboot_recovery), 4.0);
    add("L2 Cache Module", 8, 7, Some(reboot_recovery), 4.0);
    add("Centerplane", 1, 1, None, 4.0);
    add("Clock Board", 2, 1, Some(reboot_recovery), 4.0);
    add("Control Board", 2, 1, Some(hot_swap_transparent), 4.0);
    add("System Controller", 2, 1, Some(hot_swap_transparent), 4.0);
    add("Power Supply", 4, 3, Some(hot_swap_transparent), 4.0);
    add("AC Input Module", 2, 1, Some(hot_swap_transparent), 4.0);
    add("Fan Tray", 6, 5, Some(hot_swap_transparent), 4.0);
    add("Blower Assembly", 2, 1, Some(hot_swap_transparent), 4.0);
    add("I/O Board", 2, 1, Some(reboot_recovery), 4.0);
    add("PCI Card", 4, 3, Some(hot_swap_transparent), 4.0);
    add("Network Interface", 2, 1, Some(hot_swap_transparent), 4.0);
    add("Service Processor", 1, 1, None, 4.0);
    add("DVD/Tape Unit", 1, 1, None, 24.0);
    add("Interconnect Cable", 1, 1, None, 4.0);
    add("Operating System", 1, 1, None, 0.0);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::solve_spec;

    #[test]
    fn matches_figure_structure() {
        let spec = data_center();
        spec.validate().unwrap();
        // Figure 1: four level-1 blocks.
        assert_eq!(spec.root.len(), 4);
        // Figure 2: 19 blocks inside the Server Box.
        let sub = spec.root.blocks[0].subdiagram.as_ref().unwrap();
        assert_eq!(sub.len(), 19);
        assert_eq!(spec.root.depth(), 2);
        assert_eq!(spec.root.total_blocks(), 23);
    }

    #[test]
    fn solves_to_enterprise_availability() {
        let sol = solve_spec(&data_center()).unwrap();
        let a = sol.system.availability;
        // Enterprise class: between two and five nines, dominated by the
        // non-redundant OS/centerplane blocks.
        assert!(a > 0.99 && a < 0.99999, "a={a}");
        assert_eq!(sol.blocks.len(), 23);
    }

    #[test]
    fn os_dominates_downtime() {
        let sol = solve_spec(&data_center()).unwrap();
        let os = sol.block("Data Center System/Server Box/Operating System").unwrap();
        let total: f64 = sol.blocks.iter().map(|b| b.measures.yearly_downtime_minutes).sum();
        assert!(
            os.measures.yearly_downtime_minutes > 0.4 * total,
            "os {} of {total}",
            os.measures.yearly_downtime_minutes
        );
    }

    #[test]
    fn dsl_roundtrip_of_the_model() {
        let spec = data_center();
        let text = spec.to_dsl();
        let back = SystemSpec::from_dsl(&text).unwrap();
        assert_eq!(spec, back);
    }
}
