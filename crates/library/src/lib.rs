//! Model library for the RAScad reproduction.
//!
//! The paper lists "a library of models for existing Sun products and
//! integration with the component MTBF database" among RAScad's
//! features. This crate provides the equivalent:
//!
//! * [`components`] — an embedded FRU (field-replaceable unit) database
//!   with representative MTBF/MTTR figures.
//! * [`datacenter`] — the two-level "Data Center System" model of the
//!   paper's Figures 1–2: a Server Box with a 19-block subdiagram, a
//!   RAID-1 boot-drive pair, and two RAID-5 storage arrays.
//! * [`e10000`] — an E10000-class (Starfire) high-end server spec, the
//!   system whose field data the paper validates against.
//! * [`cluster`] — a two-node cluster model (the paper calls
//!   primary/standby generation "work in progress"; here it is modeled
//!   with the redundant nontransparent-recovery template).
//! * [`storage`] — RAID-1/RAID-5 array spec builders.
//!
//! All models validate and solve out of the box:
//!
//! ```
//! use rascad_library::datacenter;
//!
//! let spec = datacenter::data_center();
//! spec.validate().unwrap();
//! assert_eq!(spec.root.blocks.len(), 4);            // Figure 1
//! assert_eq!(spec.root.blocks[0].subdiagram.as_ref().unwrap().len(), 19); // Figure 2
//! ```

pub mod cluster;
pub mod components;
pub mod datacenter;
pub mod e10000;
pub mod storage;
pub mod workgroup;

pub use components::{ComponentDb, ComponentRecord};
