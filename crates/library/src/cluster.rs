//! A two-node cluster model.
//!
//! The paper notes that "model generation for the primary standby and
//! primary secondary (e.g., cluster) architecture is the work in
//! progress". We model a failover cluster with the machinery that *is*
//! specified: a redundant block (`N = 2, K = 1`) whose automatic
//! recovery is nontransparent (the failover interruption) and whose
//! repair is transparent (the failed node is serviced while the peer
//! carries the load) — the Type 3 template.

use rascad_spec::units::{Fit, Hours, Minutes};
use rascad_spec::{BlockParams, Diagram, GlobalParams, RedundancyParams, Scenario, SystemSpec};

/// Parameters describing a failover cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Per-node MTBF, hours (hardware + software combined).
    pub node_mtbf: Hours,
    /// Failover interruption, minutes.
    pub failover_time: Minutes,
    /// Probability the failover itself fails (split-brain, quorum loss).
    pub p_failover_fails: f64,
    /// Recovery time when the failover fails, minutes.
    pub failover_failure_time: Minutes,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node_mtbf: Hours(6_000.0),
            failover_time: Minutes(3.0),
            p_failover_fails: 0.02,
            failover_failure_time: Minutes(45.0),
        }
    }
}

/// Builds a two-node cluster specification.
#[must_use]
pub fn two_node_cluster(config: ClusterConfig) -> SystemSpec {
    let mut d = Diagram::new("Two-Node Cluster");
    let nodes = BlockParams::new("Cluster Node", 2, 1)
        .with_mtbf(config.node_mtbf)
        .with_transient_fit(Fit(5_000.0))
        .with_mttr_parts(Minutes(45.0), Minutes(60.0), Minutes(30.0))
        .with_service_response(Hours(4.0))
        .with_p_correct_diagnosis(0.97)
        .with_redundancy(RedundancyParams {
            p_latent_fault: 0.03,
            mttdlf: Hours(24.0),
            recovery: Scenario::Nontransparent,
            failover_time: config.failover_time,
            p_spf: config.p_failover_fails,
            spf_recovery_time: config.failover_failure_time,
            repair: Scenario::Transparent,
            reintegration_time: Minutes(0.0),
        });
    d.push(nodes);
    // The shared interconnect/quorum device is a non-redundant
    // dependency.
    d.push(
        BlockParams::new("Cluster Interconnect", 1, 1)
            .with_mtbf(Hours(500_000.0))
            .with_mttr_parts(Minutes(20.0), Minutes(20.0), Minutes(10.0))
            .with_service_response(Hours(4.0)),
    );
    rascad_obs::counter("library.specs_built", 1);
    SystemSpec::new(d, GlobalParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::solve_spec;

    #[test]
    fn cluster_uses_type3() {
        let spec = two_node_cluster(ClusterConfig::default());
        spec.validate().unwrap();
        let r = spec.root.find("Cluster Node").unwrap().params.redundancy.unwrap();
        assert_eq!(r.model_type(), 3);
    }

    #[test]
    fn cluster_beats_single_node() {
        let cluster = solve_spec(&two_node_cluster(ClusterConfig::default())).unwrap();
        let mut d = Diagram::new("Single");
        d.push(
            BlockParams::new("Node", 1, 1)
                .with_mtbf(Hours(6_000.0))
                .with_mttr_parts(Minutes(45.0), Minutes(60.0), Minutes(30.0))
                .with_service_response(Hours(4.0)),
        );
        let single = solve_spec(&SystemSpec::new(d, GlobalParams::default())).unwrap();
        assert!(
            cluster.system.yearly_downtime_minutes < single.system.yearly_downtime_minutes / 5.0,
            "cluster {} vs single {}",
            cluster.system.yearly_downtime_minutes,
            single.system.yearly_downtime_minutes
        );
    }

    #[test]
    fn faster_failover_means_less_downtime() {
        let slow =
            two_node_cluster(ClusterConfig { failover_time: Minutes(30.0), ..Default::default() });
        let fast =
            two_node_cluster(ClusterConfig { failover_time: Minutes(1.0), ..Default::default() });
        let dt_slow = solve_spec(&slow).unwrap().system.yearly_downtime_minutes;
        let dt_fast = solve_spec(&fast).unwrap().system.yearly_downtime_minutes;
        assert!(dt_fast < dt_slow);
    }
}
