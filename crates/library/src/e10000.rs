//! An E10000-class (Starfire) high-end server specification.
//!
//! The paper's field validation uses "two large operational E10000
//! servers" observed for 15 months. This model captures the E10000's
//! RAS architecture at FRU granularity: 16 hot-swappable system boards
//! with dynamic reconfiguration, up to 64 CPUs, redundant power and
//! cooling, a dual system service processor, and an interconnect
//! centerplane.

use rascad_spec::units::{Hours, Minutes};
use rascad_spec::{BlockParams, Diagram, GlobalParams, RedundancyParams, Scenario, SystemSpec};

use crate::components::ComponentDb;

/// Builds the E10000-class server specification.
#[must_use]
pub fn e10000() -> SystemSpec {
    let db = ComponentDb::embedded();
    let mut d = Diagram::new("E10000 Server");

    // Dynamic reconfiguration: board-level faults are recovered by a
    // (nontransparent) domain reboot, but repair is hot-swap with DR —
    // the paper's Type 3 combination.
    let dr_boards = RedundancyParams {
        p_latent_fault: 0.05,
        mttdlf: Hours(48.0),
        recovery: Scenario::Nontransparent,
        failover_time: Minutes(12.0),
        p_spf: 0.01,
        spf_recovery_time: Minutes(30.0),
        repair: Scenario::Transparent,
        reintegration_time: Minutes(0.0),
    };
    let hot_swap = RedundancyParams {
        p_latent_fault: 0.02,
        mttdlf: Hours(24.0),
        recovery: Scenario::Transparent,
        failover_time: Minutes(0.0),
        p_spf: 0.005,
        spf_recovery_time: Minutes(15.0),
        repair: Scenario::Transparent,
        reintegration_time: Minutes(0.0),
    };

    let mut add = |name: &str, n: u32, k: u32, red: Option<RedundancyParams>| {
        let mut b = db.find(name).unwrap_or_else(|| panic!("unknown FRU {name}")).block(n, k);
        if let Some(r) = red {
            b.redundancy = Some(r);
        }
        b.service_response = Hours(4.0);
        d.push(b);
    };

    add("System Board", 16, 15, Some(dr_boards));
    add("CPU Module", 64, 60, Some(dr_boards));
    add("Memory Module", 64, 62, Some(dr_boards));
    add("Centerplane", 1, 1, None);
    add("Control Board", 2, 1, Some(hot_swap));
    add("System Controller", 2, 1, Some(hot_swap));
    add("Power Supply", 8, 7, Some(hot_swap));
    add("AC Input Module", 4, 3, Some(hot_swap));
    add("Fan Tray", 16, 15, Some(hot_swap));
    add("I/O Board", 4, 3, Some(dr_boards));
    add("Boot Drive", 2, 1, Some(hot_swap));
    add("Service Processor", 2, 1, Some(hot_swap));
    // OS recovery is a reboot, not a field-service visit.
    let mut os = db.find("Operating System").expect("embedded record").block(1, 1);
    os.service_response = Hours(0.0);
    d.push(os);

    rascad_obs::counter("library.specs_built", 1);
    SystemSpec::new(
        d,
        GlobalParams {
            reboot_time: Minutes(15.0),
            mttm: Hours(48.0),
            mttrfid: Hours(8.0),
            mission_time: Hours(Hours::PER_YEAR),
        },
    )
}

/// The same machine with every redundancy stripped (all `K = N`),
/// used as an ablation baseline in the experiments.
#[must_use]
pub fn e10000_no_redundancy() -> SystemSpec {
    let spec = e10000();
    let mut d = Diagram::new(spec.root.name.clone());
    for b in &spec.root.blocks {
        let mut p: BlockParams = b.params.clone();
        p.min_quantity = p.quantity;
        p.redundancy = None;
        d.push(p);
    }
    SystemSpec::new(d, spec.globals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::solve_spec;

    #[test]
    fn validates_and_solves() {
        let spec = e10000();
        spec.validate().unwrap();
        let sol = solve_spec(&spec).unwrap();
        assert!(sol.system.availability > 0.99, "a={}", sol.system.availability);
        assert_eq!(sol.blocks.len(), 13);
    }

    #[test]
    fn redundancy_ablation_hurts() {
        let with = solve_spec(&e10000()).unwrap().system.yearly_downtime_minutes;
        let without = solve_spec(&e10000_no_redundancy()).unwrap().system.yearly_downtime_minutes;
        assert!(without > 2.0 * with, "redundant {with} min/y vs stripped {without} min/y");
    }

    #[test]
    fn board_counts_match_the_machine() {
        let spec = e10000();
        let boards = spec.root.find("System Board").unwrap();
        assert_eq!(boards.params.quantity, 16);
        let cpus = spec.root.find("CPU Module").unwrap();
        assert_eq!(cpus.params.quantity, 64);
    }
}
