//! A low-end workgroup server — the bottom of the product line the
//! paper's tool spans (RAScad "has been used to develop availability
//! models for a variety of Sun system products").
//!
//! Minimal redundancy: one board, one CPU, a mirrored disk pair, a
//! single power supply. Useful as the contrast case against the
//! high-end [`crate::e10000`] in architecture comparisons.

use rascad_spec::units::{Hours, Minutes};
use rascad_spec::{Diagram, GlobalParams, SystemSpec};

use crate::components::ComponentDb;
use crate::storage::raid1;

/// Builds the workgroup-server specification.
#[must_use]
pub fn workgroup() -> SystemSpec {
    let db = ComponentDb::embedded();
    let mut d = Diagram::new("Workgroup Server");

    let mut add_single = |name: &str, tresp: f64| {
        let mut b = db.find(name).unwrap_or_else(|| panic!("unknown FRU {name}")).block(1, 1);
        b.service_response = Hours(tresp);
        d.push(b);
    };
    // Next-business-day service contract: long response times.
    add_single("System Board", 24.0);
    add_single("CPU Module", 24.0);
    add_single("Memory Module", 24.0);
    add_single("Power Supply", 24.0);
    add_single("Network Interface", 24.0);
    add_single("Operating System", 0.0);
    let mut disks = raid1("Boot Disks, RAID1");
    disks.params.service_response = Hours(24.0);
    d.push_block(disks);

    rascad_obs::counter("library.specs_built", 1);
    SystemSpec::new(
        d,
        GlobalParams {
            reboot_time: Minutes(5.0),
            mttm: Hours(72.0),
            mttrfid: Hours(12.0),
            mission_time: Hours(Hours::PER_YEAR),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_core::{compare_architectures, solve_spec};

    #[test]
    fn validates_and_solves() {
        let spec = workgroup();
        spec.validate().unwrap();
        let sol = solve_spec(&spec).unwrap();
        // Low-end box on a slow service contract: about three nines.
        assert!(
            sol.system.availability > 0.98 && sol.system.availability < 0.9999,
            "a={}",
            sol.system.availability
        );
    }

    #[test]
    fn high_end_server_beats_workgroup_box() {
        let cmp =
            compare_architectures("workgroup", &workgroup(), "e10000", &crate::e10000::e10000())
                .unwrap();
        assert_eq!(cmp.winner(), "e10000");
        assert!(cmp.unavailability_ratio() < 0.8, "ratio {}", cmp.unavailability_ratio());
    }
}
