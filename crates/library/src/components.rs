//! The embedded component (FRU) MTBF database.
//!
//! RAScad integrates with Sun's component MTBF database; this module
//! embeds a representative equivalent with publicly plausible values
//! for enterprise-server FRUs of the early-2000s era. Values are
//! *representative*, chosen to exercise the same orders of magnitude
//! the tool was built for (10⁵–10⁷ hour MTBFs against minute-to-hour
//! repair times).

use rascad_spec::units::{Fit, Hours, Minutes};
use rascad_spec::BlockParams;

/// One database record for a field-replaceable unit.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentRecord {
    /// Canonical FRU name.
    pub name: &'static str,
    /// Part number.
    pub part_number: &'static str,
    /// Permanent-fault MTBF, hours.
    pub mtbf: Hours,
    /// Transient failure rate, FIT.
    pub transient_fit: Fit,
    /// Diagnosis time, minutes.
    pub diagnosis: Minutes,
    /// Corrective action time, minutes.
    pub corrective: Minutes,
    /// Verification time, minutes.
    pub verification: Minutes,
}

impl ComponentRecord {
    /// Instantiates block parameters for `quantity`/`min_quantity` units
    /// of this FRU. Redundant blocks receive default redundancy
    /// parameters the caller can refine.
    #[must_use]
    pub fn block(&self, quantity: u32, min_quantity: u32) -> BlockParams {
        BlockParams::new(self.name, quantity, min_quantity)
            .with_part_number(self.part_number)
            .with_mtbf(self.mtbf)
            .with_transient_fit(self.transient_fit)
            .with_mttr_parts(self.diagnosis, self.corrective, self.verification)
    }
}

/// The embedded FRU database.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDb {
    records: Vec<ComponentRecord>,
}

impl ComponentDb {
    /// Loads the embedded database.
    #[must_use]
    pub fn embedded() -> ComponentDb {
        ComponentDb { records: RECORDS.to_vec() }
    }

    /// Looks a record up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&ComponentRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// All records.
    #[must_use]
    pub fn records(&self) -> &[ComponentRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty (never true for the embedded one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

const fn rec(
    name: &'static str,
    part_number: &'static str,
    mtbf_hours: f64,
    fit: f64,
    diagnosis: f64,
    corrective: f64,
    verification: f64,
) -> ComponentRecord {
    ComponentRecord {
        name,
        part_number,
        mtbf: Hours(mtbf_hours),
        transient_fit: Fit(fit),
        diagnosis: Minutes(diagnosis),
        corrective: Minutes(corrective),
        verification: Minutes(verification),
    }
}

/// Representative FRU records.
const RECORDS: &[ComponentRecord] = &[
    rec("System Board", "501-4300", 180_000.0, 800.0, 30.0, 45.0, 20.0),
    rec("CPU Module", "501-5675", 1_000_000.0, 1_500.0, 20.0, 30.0, 15.0),
    rec("Memory Module", "501-2653", 2_500_000.0, 3_000.0, 20.0, 20.0, 15.0),
    rec("L2 Cache Module", "501-2781", 1_800_000.0, 1_200.0, 20.0, 25.0, 15.0),
    rec("Power Supply", "300-1301", 250_000.0, 100.0, 10.0, 15.0, 5.0),
    rec("AC Input Module", "300-1231", 400_000.0, 50.0, 10.0, 20.0, 5.0),
    rec("Fan Tray", "540-2592", 350_000.0, 0.0, 5.0, 10.0, 5.0),
    rec("Blower Assembly", "540-3614", 300_000.0, 0.0, 5.0, 15.0, 5.0),
    rec("Centerplane", "501-4914", 1_200_000.0, 200.0, 60.0, 120.0, 30.0),
    rec("Control Board", "501-4882", 500_000.0, 400.0, 30.0, 30.0, 15.0),
    rec("System Controller", "501-5710", 450_000.0, 500.0, 30.0, 30.0, 20.0),
    rec("Clock Board", "501-4946", 900_000.0, 150.0, 30.0, 40.0, 15.0),
    rec("I/O Board", "501-4266", 350_000.0, 600.0, 30.0, 35.0, 20.0),
    rec("PCI Card", "375-0005", 600_000.0, 300.0, 15.0, 15.0, 10.0),
    rec("Disk Drive", "540-3024", 300_000.0, 0.0, 15.0, 20.0, 30.0),
    rec("Boot Drive", "540-4177", 350_000.0, 0.0, 15.0, 20.0, 30.0),
    rec("DVD/Tape Unit", "390-0028", 200_000.0, 0.0, 10.0, 15.0, 5.0),
    rec("Service Processor", "501-5567", 550_000.0, 700.0, 25.0, 30.0, 15.0),
    rec("Interconnect Cable", "530-2842", 2_000_000.0, 50.0, 20.0, 20.0, 10.0),
    rec("Operating System", "SOLARIS-8", 8_000.0, 12_000.0, 15.0, 30.0, 15.0),
    rec("Storage Controller", "375-3032", 400_000.0, 450.0, 20.0, 25.0, 15.0),
    rec("Network Interface", "501-5524", 700_000.0, 350.0, 15.0, 15.0, 10.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_has_the_expected_records() {
        let db = ComponentDb::embedded();
        assert!(db.len() >= 20);
        assert!(!db.is_empty());
        assert!(db.find("CPU Module").is_some());
        assert!(db.find("Flux Capacitor").is_none());
    }

    #[test]
    fn names_are_unique() {
        let db = ComponentDb::embedded();
        let mut names: Vec<_> = db.records().iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), db.len());
    }

    #[test]
    fn block_instantiation_carries_values() {
        let db = ComponentDb::embedded();
        let cpu = db.find("CPU Module").unwrap();
        let b = cpu.block(4, 3);
        assert_eq!(b.quantity, 4);
        assert_eq!(b.min_quantity, 3);
        assert_eq!(b.mtbf, cpu.mtbf);
        assert!(b.redundancy.is_some());
        assert_eq!(b.part_number.as_deref(), Some("501-5675"));
        let single = cpu.block(1, 1);
        assert!(single.redundancy.is_none());
    }

    #[test]
    fn all_records_make_valid_blocks() {
        use rascad_spec::{Diagram, GlobalParams, SystemSpec};
        let db = ComponentDb::embedded();
        let mut d = Diagram::new("All FRUs");
        for r in db.records() {
            d.push(r.block(1, 1));
        }
        SystemSpec::new(d, GlobalParams::default()).validate().unwrap();
    }
}
