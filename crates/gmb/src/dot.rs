//! Graphviz DOT export — GMB's "graphical output".

use std::fmt::Write as _;

use rascad_markov::Ctmc;

use crate::registry::{RbdSpec, Value};

/// Renders a CTMC as Graphviz DOT. Up states are ellipses, down states
/// are boxes; edges are labelled with their rates.
#[must_use]
pub fn ctmc_dot(name: &str, chain: &Ctmc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(name));
    let _ = writeln!(out, "    rankdir=LR;");
    for (i, s) in chain.states().iter().enumerate() {
        let shape = if s.reward > 0.0 { "ellipse" } else { "box" };
        let _ = writeln!(out, "    s{i} [label=\"{}\", shape={shape}];", sanitize(&s.label));
    }
    for t in chain.transitions() {
        let _ = writeln!(out, "    s{} -> s{} [label=\"{:.4e}\"];", t.from, t.to, t.rate);
    }
    out.push_str("}\n");
    out
}

/// Renders an RBD spec as Graphviz DOT (a tree of gates and leaves).
#[must_use]
pub fn rbd_dot(name: &str, rbd: &RbdSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(name));
    let _ = writeln!(out, "    rankdir=TB;");
    let mut counter = 0usize;
    emit(&mut out, rbd, &mut counter);
    out.push_str("}\n");
    out
}

fn emit(out: &mut String, node: &RbdSpec, counter: &mut usize) -> usize {
    let id = *counter;
    *counter += 1;
    match node {
        RbdSpec::Leaf(v) => {
            let label = match v {
                Value::Const(c) => format!("{c:.6}"),
                Value::Param(p) => format!("${p}"),
                Value::Model(m) => format!("@{m}"),
            };
            let _ = writeln!(out, "    n{id} [label=\"{}\", shape=box];", sanitize(&label));
        }
        RbdSpec::Series(ch) => {
            let _ = writeln!(out, "    n{id} [label=\"SERIES\", shape=diamond];");
            for c in ch {
                let cid = emit(out, c, counter);
                let _ = writeln!(out, "    n{id} -> n{cid};");
            }
        }
        RbdSpec::Parallel(ch) => {
            let _ = writeln!(out, "    n{id} [label=\"PARALLEL\", shape=diamond];");
            for c in ch {
                let cid = emit(out, c, counter);
                let _ = writeln!(out, "    n{id} -> n{cid};");
            }
        }
        RbdSpec::KOfN { k, children } => {
            let _ =
                writeln!(out, "    n{id} [label=\"{k}-of-{}\", shape=diamond];", children.len());
            for c in children {
                let cid = emit(out, c, counter);
                let _ = writeln!(out, "    n{id} -> n{cid};");
            }
        }
    }
    id
}

fn sanitize(s: &str) -> String {
    s.replace('"', "'")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_markov::CtmcBuilder;

    #[test]
    fn ctmc_dot_shapes_by_reward() {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, 0.5);
        b.add_transition(down, up, 2.0);
        let dot = ctmc_dot("two", &b.build().unwrap());
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=box"));
        assert_eq!(dot.matches(" -> ").count(), 2);
    }

    #[test]
    fn rbd_dot_renders_all_node_kinds() {
        let rbd = RbdSpec::series(vec![
            RbdSpec::leaf(Value::constant(0.9)),
            RbdSpec::parallel(vec![
                RbdSpec::leaf(Value::param("a")),
                RbdSpec::leaf(Value::model("m")),
            ]),
            RbdSpec::k_of_n(
                2,
                vec![
                    RbdSpec::leaf(Value::constant(0.8)),
                    RbdSpec::leaf(Value::constant(0.8)),
                    RbdSpec::leaf(Value::constant(0.8)),
                ],
            ),
        ]);
        let dot = rbd_dot("tree", &rbd);
        assert!(dot.contains("SERIES"));
        assert!(dot.contains("PARALLEL"));
        assert!(dot.contains("2-of-3"));
        assert!(dot.contains("$a"));
        assert!(dot.contains("@m"));
    }

    #[test]
    fn quotes_sanitized() {
        let dot = rbd_dot("a\"b", &RbdSpec::leaf(Value::constant(0.5)));
        assert!(!dot.contains("a\"b"));
    }
}
