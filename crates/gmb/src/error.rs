//! Error type for the GMB workbench.

use std::fmt;

use rascad_markov::MarkovError;
use rascad_rbd::RbdError;

/// Error produced by GMB model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GmbError {
    /// A referenced model name is not registered.
    UnknownModel {
        /// The missing name.
        name: String,
    },
    /// A referenced parameter is not set.
    UnknownParameter {
        /// The missing parameter name.
        name: String,
    },
    /// Two models were registered under the same name.
    DuplicateModel {
        /// The clashing name.
        name: String,
    },
    /// Model references form a cycle.
    CyclicReference {
        /// A model on the cycle.
        name: String,
    },
    /// An underlying Markov solve failed.
    Markov {
        /// The model that failed.
        model: String,
        /// The solver error.
        source: MarkovError,
    },
    /// An underlying RBD evaluation failed.
    Rbd {
        /// The model that failed.
        model: String,
        /// The evaluation error.
        source: RbdError,
    },
}

impl fmt::Display for GmbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmbError::UnknownModel { name } => write!(f, "unknown model \"{name}\""),
            GmbError::UnknownParameter { name } => write!(f, "unknown parameter \"{name}\""),
            GmbError::DuplicateModel { name } => {
                write!(f, "model \"{name}\" registered twice")
            }
            GmbError::CyclicReference { name } => {
                write!(f, "cyclic model reference through \"{name}\"")
            }
            GmbError::Markov { model, source } => {
                write!(f, "markov error in model \"{model}\": {source}")
            }
            GmbError::Rbd { model, source } => {
                write!(f, "rbd error in model \"{model}\": {source}")
            }
        }
    }
}

impl std::error::Error for GmbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GmbError::Markov { source, .. } => Some(source),
            GmbError::Rbd { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let cases = [
            GmbError::UnknownModel { name: "x".into() },
            GmbError::UnknownParameter { name: "p".into() },
            GmbError::DuplicateModel { name: "x".into() },
            GmbError::CyclicReference { name: "x".into() },
            GmbError::Markov { model: "m".into(), source: MarkovError::Singular },
            GmbError::Rbd { model: "r".into(), source: RbdError::EmptyGate },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
