//! The hierarchical model registry.

use std::collections::{BTreeMap, HashMap, HashSet};

use rascad_markov::{CtmcBuilder, SemiMarkovBuilder, SojournDistribution, SteadyStateMethod};
use rascad_rbd::block::k_of_n_probability;

use crate::error::GmbError;

/// A value that resolves at solve time: a constant, a named parameter,
/// or the availability of another registered model (the hierarchy).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// A literal value.
    Const(f64),
    /// A named parameter from the registry's parameter table.
    Param(String),
    /// The solved availability of another model.
    Model(String),
}

impl Value {
    /// A literal value.
    #[must_use]
    pub fn constant(v: f64) -> Value {
        Value::Const(v)
    }

    /// A named parameter.
    pub fn param(name: impl Into<String>) -> Value {
        Value::Param(name.into())
    }

    /// A reference to another model's availability.
    pub fn model(name: impl Into<String>) -> Value {
        Value::Model(name.into())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Const(v)
    }
}

/// A GMB Markov model: states with rewards, transitions with [`Value`]
/// rates.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MarkovSpec {
    states: Vec<(String, f64)>,
    transitions: Vec<(usize, usize, Value)>,
}

impl MarkovSpec {
    /// Creates an empty Markov model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state (reward 1 = up, 0 = down); returns its id.
    pub fn state(&mut self, label: impl Into<String>, reward: f64) -> usize {
        self.states.push((label.into(), reward));
        self.states.len() - 1
    }

    /// Adds a transition with a resolvable rate.
    pub fn transition(&mut self, from: usize, to: usize, rate: impl Into<Value>) -> &mut Self {
        self.transitions.push((from, to, rate.into()));
        self
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the model has no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// A GMB semi-Markov model: states with sojourn distributions, jump
/// probabilities as [`Value`]s.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SemiMarkovSpec {
    states: Vec<(String, f64, SojournDistribution)>,
    jumps: Vec<(usize, usize, Value)>,
}

impl SemiMarkovSpec {
    /// Creates an empty semi-Markov model.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state with its sojourn distribution; returns its id.
    pub fn state(
        &mut self,
        label: impl Into<String>,
        reward: f64,
        sojourn: SojournDistribution,
    ) -> usize {
        self.states.push((label.into(), reward, sojourn));
        self.states.len() - 1
    }

    /// Adds a jump with a resolvable probability.
    pub fn jump(&mut self, from: usize, to: usize, probability: impl Into<Value>) -> &mut Self {
        self.jumps.push((from, to, probability.into()));
        self
    }
}

/// A GMB RBD: like [`rascad_rbd::Rbd`] but with [`Value`] leaves, so a
/// block can be a constant, a parameter, or another model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RbdSpec {
    /// A basic block with a resolvable availability.
    Leaf(Value),
    /// All children required.
    Series(Vec<RbdSpec>),
    /// Any child suffices.
    Parallel(Vec<RbdSpec>),
    /// At least `k` children required.
    KOfN {
        /// Minimum working children.
        k: u32,
        /// The children.
        children: Vec<RbdSpec>,
    },
}

impl RbdSpec {
    /// Leaf constructor.
    pub fn leaf(v: impl Into<Value>) -> RbdSpec {
        RbdSpec::Leaf(v.into())
    }

    /// Series constructor.
    #[must_use]
    pub fn series(children: Vec<RbdSpec>) -> RbdSpec {
        RbdSpec::Series(children)
    }

    /// Parallel constructor.
    #[must_use]
    pub fn parallel(children: Vec<RbdSpec>) -> RbdSpec {
        RbdSpec::Parallel(children)
    }

    /// k-of-n constructor.
    #[must_use]
    pub fn k_of_n(k: u32, children: Vec<RbdSpec>) -> RbdSpec {
        RbdSpec::KOfN { k, children }
    }

    fn referenced_models(&self, out: &mut Vec<String>) {
        match self {
            RbdSpec::Leaf(Value::Model(m)) => out.push(m.clone()),
            RbdSpec::Leaf(_) => {}
            RbdSpec::Series(ch) | RbdSpec::Parallel(ch) => {
                ch.iter().for_each(|c| c.referenced_models(out));
            }
            RbdSpec::KOfN { children, .. } => {
                children.iter().for_each(|c| c.referenced_models(out));
            }
        }
    }
}

/// One registered model.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Model {
    Markov(MarkovSpec),
    SemiMarkov(SemiMarkovSpec),
    Rbd(RbdSpec),
}

/// A named, hierarchical collection of models with a shared parameter
/// table.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelRegistry {
    models: BTreeMap<String, Model>,
    parameters: HashMap<String, f64>,
    method: SteadyStateMethod,
}

impl ModelRegistry {
    /// Creates an empty registry (GTH steady-state method).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the steady-state method used for Markov models.
    pub fn set_method(&mut self, method: SteadyStateMethod) -> &mut Self {
        self.method = method;
        self
    }

    /// Sets (or overwrites) a named parameter.
    pub fn set_parameter(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.parameters.insert(name.into(), value);
        self
    }

    /// Reads a named parameter.
    #[must_use]
    pub fn parameter(&self, name: &str) -> Option<f64> {
        self.parameters.get(name).copied()
    }

    /// Registers a Markov model.
    ///
    /// # Errors
    ///
    /// Returns [`GmbError::DuplicateModel`] if the name is taken.
    pub fn add_markov(
        &mut self,
        name: impl Into<String>,
        spec: MarkovSpec,
    ) -> Result<(), GmbError> {
        self.add(name.into(), Model::Markov(spec))
    }

    /// Registers a semi-Markov model.
    ///
    /// # Errors
    ///
    /// Returns [`GmbError::DuplicateModel`] if the name is taken.
    pub fn add_semi_markov(
        &mut self,
        name: impl Into<String>,
        spec: SemiMarkovSpec,
    ) -> Result<(), GmbError> {
        self.add(name.into(), Model::SemiMarkov(spec))
    }

    /// Registers an RBD model.
    ///
    /// # Errors
    ///
    /// Returns [`GmbError::DuplicateModel`] if the name is taken.
    pub fn add_rbd(&mut self, name: impl Into<String>, spec: RbdSpec) -> Result<(), GmbError> {
        self.add(name.into(), Model::Rbd(spec))
    }

    fn add(&mut self, name: String, model: Model) -> Result<(), GmbError> {
        if self.models.contains_key(&name) {
            return Err(GmbError::DuplicateModel { name });
        }
        self.models.insert(name, model);
        Ok(())
    }

    /// Registered model names in sorted order.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Solves the named model for its steady-state availability,
    /// resolving parameters and model references recursively.
    ///
    /// # Errors
    ///
    /// * [`GmbError::UnknownModel`] / [`GmbError::UnknownParameter`] for
    ///   dangling references.
    /// * [`GmbError::CyclicReference`] if model references loop.
    /// * [`GmbError::Markov`] / [`GmbError::Rbd`] for solver failures.
    pub fn availability(&self, name: &str) -> Result<f64, GmbError> {
        let mut span = rascad_obs::span("gmb.availability");
        span.record("model", name);
        let mut stack = HashSet::new();
        let mut cache = HashMap::new();
        let a = self.solve(name, &mut stack, &mut cache)?;
        span.record("models_solved", cache.len());
        rascad_obs::counter("gmb.models_solved", cache.len() as u64);
        Ok(a)
    }

    fn solve(
        &self,
        name: &str,
        stack: &mut HashSet<String>,
        cache: &mut HashMap<String, f64>,
    ) -> Result<f64, GmbError> {
        if let Some(&a) = cache.get(name) {
            return Ok(a);
        }
        if !stack.insert(name.to_string()) {
            return Err(GmbError::CyclicReference { name: name.to_string() });
        }
        let model = self
            .models
            .get(name)
            .ok_or_else(|| GmbError::UnknownModel { name: name.to_string() })?;
        let a = match model {
            Model::Markov(spec) => self.solve_markov(name, spec, stack, cache)?,
            Model::SemiMarkov(spec) => self.solve_semi(name, spec, stack, cache)?,
            Model::Rbd(spec) => self.solve_rbd(name, spec, stack, cache)?,
        };
        stack.remove(name);
        cache.insert(name.to_string(), a);
        Ok(a)
    }

    fn resolve(
        &self,
        v: &Value,
        stack: &mut HashSet<String>,
        cache: &mut HashMap<String, f64>,
    ) -> Result<f64, GmbError> {
        match v {
            Value::Const(c) => Ok(*c),
            Value::Param(p) => self
                .parameters
                .get(p)
                .copied()
                .ok_or_else(|| GmbError::UnknownParameter { name: p.clone() }),
            Value::Model(m) => self.solve(m, stack, cache),
        }
    }

    fn solve_markov(
        &self,
        name: &str,
        spec: &MarkovSpec,
        stack: &mut HashSet<String>,
        cache: &mut HashMap<String, f64>,
    ) -> Result<f64, GmbError> {
        let mut b = CtmcBuilder::new();
        for (label, reward) in &spec.states {
            b.add_state(label.clone(), *reward);
        }
        for (from, to, rate) in &spec.transitions {
            let r = self.resolve(rate, stack, cache)?;
            b.add_transition(*from, *to, r);
        }
        let chain =
            b.build().map_err(|source| GmbError::Markov { model: name.to_string(), source })?;
        let pi = chain
            .steady_state(self.method)
            .map_err(|source| GmbError::Markov { model: name.to_string(), source })?;
        Ok(chain.expected_reward(&pi))
    }

    fn solve_semi(
        &self,
        name: &str,
        spec: &SemiMarkovSpec,
        stack: &mut HashSet<String>,
        cache: &mut HashMap<String, f64>,
    ) -> Result<f64, GmbError> {
        let mut b = SemiMarkovBuilder::new();
        for (label, reward, sojourn) in &spec.states {
            b.add_state(label.clone(), *reward, *sojourn);
        }
        for (from, to, p) in &spec.jumps {
            let prob = self.resolve(p, stack, cache)?;
            b.add_jump(*from, *to, prob);
        }
        let smp =
            b.build().map_err(|source| GmbError::Markov { model: name.to_string(), source })?;
        smp.availability().map_err(|source| GmbError::Markov { model: name.to_string(), source })
    }

    fn solve_rbd(
        &self,
        name: &str,
        spec: &RbdSpec,
        stack: &mut HashSet<String>,
        cache: &mut HashMap<String, f64>,
    ) -> Result<f64, GmbError> {
        match spec {
            RbdSpec::Leaf(v) => {
                let a = self.resolve(v, stack, cache)?;
                if !(0.0..=1.0).contains(&a) || !a.is_finite() {
                    return Err(GmbError::Rbd {
                        model: name.to_string(),
                        source: rascad_rbd::RbdError::InvalidProbability {
                            what: format!("leaf availability {a}"),
                        },
                    });
                }
                Ok(a)
            }
            RbdSpec::Series(ch) => {
                if ch.is_empty() {
                    return Err(GmbError::Rbd {
                        model: name.to_string(),
                        source: rascad_rbd::RbdError::EmptyGate,
                    });
                }
                let mut a = 1.0;
                for c in ch {
                    a *= self.solve_rbd(name, c, stack, cache)?;
                }
                Ok(a)
            }
            RbdSpec::Parallel(ch) => {
                if ch.is_empty() {
                    return Err(GmbError::Rbd {
                        model: name.to_string(),
                        source: rascad_rbd::RbdError::EmptyGate,
                    });
                }
                let mut u = 1.0;
                for c in ch {
                    u *= 1.0 - self.solve_rbd(name, c, stack, cache)?;
                }
                Ok(1.0 - u)
            }
            RbdSpec::KOfN { k, children } => {
                if children.is_empty() || *k == 0 || *k as usize > children.len() {
                    return Err(GmbError::Rbd {
                        model: name.to_string(),
                        source: rascad_rbd::RbdError::InvalidKofN { k: *k, n: children.len() },
                    });
                }
                let probs = children
                    .iter()
                    .map(|c| self.solve_rbd(name, c, stack, cache))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(k_of_n_probability(*k as usize, &probs))
            }
        }
    }

    /// Builds the CTMC of a registered *Markov* model with every rate
    /// resolved, for use with the full `rascad-markov` analysis surface
    /// (transient solves, MTTF, failure modes, sensitivities).
    ///
    /// # Errors
    ///
    /// * [`GmbError::UnknownModel`] if `name` is not registered or not a
    ///   Markov model.
    /// * Resolution/build errors as in [`availability`](Self::availability).
    pub fn build_markov(&self, name: &str) -> Result<rascad_markov::Ctmc, GmbError> {
        let Some(Model::Markov(spec)) = self.models.get(name) else {
            return Err(GmbError::UnknownModel { name: format!("{name} (as a Markov model)") });
        };
        let mut stack = HashSet::new();
        let mut cache = HashMap::new();
        let mut b = CtmcBuilder::new();
        for (label, reward) in &spec.states {
            b.add_state(label.clone(), *reward);
        }
        for (from, to, rate) in &spec.transitions {
            let r = self.resolve(rate, &mut stack, &mut cache)?;
            b.add_transition(*from, *to, r);
        }
        b.build().map_err(|source| GmbError::Markov { model: name.to_string(), source })
    }

    /// Interval availability of a registered Markov model over
    /// `(0, horizon)`, starting from its first state.
    ///
    /// # Errors
    ///
    /// As for [`build_markov`](Self::build_markov), plus transient
    /// solver errors.
    pub fn interval_availability(&self, name: &str, horizon: f64) -> Result<f64, GmbError> {
        let chain = self.build_markov(name)?;
        let mut p0 = vec![0.0; chain.len()];
        p0[0] = 1.0;
        let sol = rascad_markov::transient::solve(
            &chain,
            &p0,
            horizon,
            rascad_markov::TransientOptions::default(),
        )
        .map_err(|source| GmbError::Markov { model: name.to_string(), source })?;
        Ok(sol.interval_reward)
    }

    /// MTTF of a registered Markov model from its first state.
    ///
    /// # Errors
    ///
    /// As for [`build_markov`](Self::build_markov), plus absorbing-chain
    /// analysis errors.
    pub fn mttf(&self, name: &str) -> Result<f64, GmbError> {
        let chain = self.build_markov(name)?;
        let analysis = rascad_markov::absorbing::mttf(&chain, 0)
            .map_err(|source| GmbError::Markov { model: name.to_string(), source })?;
        Ok(analysis.mttf)
    }

    /// Serializes the whole workbench (models + parameters) to JSON —
    /// the GMB equivalent of the paper's model file sharing.
    ///
    /// Only available with the `serde` feature (requires the real
    /// serde/serde_json crates — see vendor/README.md).
    #[cfg(feature = "serde")]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("registry types serialize infallibly")
    }

    /// Loads a workbench saved with [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns [`GmbError::Markov`] wrapping a parse description on
    /// malformed input.
    ///
    /// Only available with the `serde` feature (requires the real
    /// serde/serde_json crates — see vendor/README.md).
    #[cfg(feature = "serde")]
    pub fn from_json(s: &str) -> Result<Self, GmbError> {
        serde_json::from_str(s).map_err(|e| GmbError::Markov {
            model: "<registry json>".to_string(),
            source: rascad_markov::MarkovError::InvalidOption { what: e.to_string() },
        })
    }

    /// Models (transitively) referenced by `name`, in no particular
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`GmbError::UnknownModel`] if `name` is not registered.
    pub fn dependencies(&self, name: &str) -> Result<Vec<String>, GmbError> {
        let model = self
            .models
            .get(name)
            .ok_or_else(|| GmbError::UnknownModel { name: name.to_string() })?;
        let mut out = Vec::new();
        if let Model::Rbd(spec) = model {
            spec.referenced_models(&mut out);
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    fn two_state_markov(lam: Value, mu: Value) -> MarkovSpec {
        let mut m = MarkovSpec::new();
        let up = m.state("up", 1.0);
        let down = m.state("down", 0.0);
        m.transition(up, down, lam);
        m.transition(down, up, mu);
        m
    }

    #[test]
    fn markov_model_with_parameters() {
        let mut reg = ModelRegistry::new();
        reg.set_parameter("lambda", 0.001).set_parameter("mu", 0.5);
        reg.add_markov("m", two_state_markov(Value::param("lambda"), Value::param("mu"))).unwrap();
        let a = reg.availability("m").unwrap();
        assert!((a - 0.5 / 0.501).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_rbd_over_markov() {
        let mut reg = ModelRegistry::new();
        reg.add_markov("leaf", two_state_markov(0.01.into(), 1.0.into())).unwrap();
        let a_leaf = 1.0 / 1.01;
        reg.add_rbd(
            "pair",
            RbdSpec::parallel(vec![
                RbdSpec::leaf(Value::model("leaf")),
                RbdSpec::leaf(Value::model("leaf")),
            ]),
        )
        .unwrap();
        let a = reg.availability("pair").unwrap();
        let u = 1.0 - a_leaf;
        assert!((a - (1.0 - u * u)).abs() < 1e-12);
    }

    #[test]
    fn three_level_hierarchy() {
        let mut reg = ModelRegistry::new();
        reg.add_markov("disk", two_state_markov(1e-4.into(), 0.25.into())).unwrap();
        reg.add_rbd(
            "array",
            RbdSpec::k_of_n(
                2,
                vec![
                    RbdSpec::leaf(Value::model("disk")),
                    RbdSpec::leaf(Value::model("disk")),
                    RbdSpec::leaf(Value::model("disk")),
                ],
            ),
        )
        .unwrap();
        reg.add_rbd(
            "site",
            RbdSpec::series(vec![
                RbdSpec::leaf(Value::model("array")),
                RbdSpec::leaf(Value::constant(0.9999)),
            ]),
        )
        .unwrap();
        let a_disk = 0.25 / (0.25 + 1e-4);
        let a_array = k_of_n_probability(2, &[a_disk, a_disk, a_disk]);
        let expect = a_array * 0.9999;
        assert!((reg.availability("site").unwrap() - expect).abs() < 1e-12);
        assert_eq!(reg.dependencies("site").unwrap(), vec!["array".to_string()]);
    }

    #[test]
    fn semi_markov_model() {
        let mut reg = ModelRegistry::new();
        let mut s = SemiMarkovSpec::new();
        let up = s.state("up", 1.0, SojournDistribution::Exponential { rate: 0.001 });
        let down = s.state("down", 0.0, SojournDistribution::Deterministic { value: 2.0 });
        s.jump(up, down, 1.0);
        s.jump(down, up, 1.0);
        reg.add_semi_markov("smp", s).unwrap();
        let a = reg.availability("smp").unwrap();
        assert!((a - 1000.0 / 1002.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_detected() {
        let mut reg = ModelRegistry::new();
        reg.add_rbd("a", RbdSpec::leaf(Value::model("b"))).unwrap();
        reg.add_rbd("b", RbdSpec::leaf(Value::model("a"))).unwrap();
        assert!(matches!(reg.availability("a").unwrap_err(), GmbError::CyclicReference { .. }));
    }

    #[test]
    fn dangling_references_reported() {
        let mut reg = ModelRegistry::new();
        reg.add_rbd("a", RbdSpec::leaf(Value::model("ghost"))).unwrap();
        assert!(matches!(reg.availability("a").unwrap_err(), GmbError::UnknownModel { .. }));

        let mut reg2 = ModelRegistry::new();
        reg2.add_markov("m", two_state_markov(Value::param("ghost"), 1.0.into())).unwrap();
        assert!(matches!(reg2.availability("m").unwrap_err(), GmbError::UnknownParameter { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = ModelRegistry::new();
        reg.add_rbd("a", RbdSpec::leaf(Value::constant(0.5))).unwrap();
        assert!(matches!(
            reg.add_rbd("a", RbdSpec::leaf(Value::constant(0.6))).unwrap_err(),
            GmbError::DuplicateModel { .. }
        ));
    }

    #[test]
    fn invalid_leaf_availability_rejected() {
        let mut reg = ModelRegistry::new();
        reg.add_rbd("a", RbdSpec::leaf(Value::constant(1.5))).unwrap();
        assert!(matches!(reg.availability("a").unwrap_err(), GmbError::Rbd { .. }));
    }

    #[test]
    fn empty_gates_rejected() {
        let mut reg = ModelRegistry::new();
        reg.add_rbd("a", RbdSpec::series(vec![])).unwrap();
        assert!(matches!(reg.availability("a").unwrap_err(), GmbError::Rbd { .. }));
        let mut reg2 = ModelRegistry::new();
        reg2.add_rbd("b", RbdSpec::k_of_n(3, vec![RbdSpec::leaf(Value::constant(0.9))])).unwrap();
        assert!(matches!(reg2.availability("b").unwrap_err(), GmbError::Rbd { .. }));
    }

    #[test]
    fn caching_gives_consistent_results() {
        // The same model referenced twice resolves to the same value.
        let mut reg = ModelRegistry::new();
        reg.set_parameter("lambda", 0.01);
        reg.add_markov("m", two_state_markov(Value::param("lambda"), 1.0.into())).unwrap();
        reg.add_rbd(
            "top",
            RbdSpec::series(vec![
                RbdSpec::leaf(Value::model("m")),
                RbdSpec::leaf(Value::model("m")),
            ]),
        )
        .unwrap();
        let a_m = reg.availability("m").unwrap();
        let a_top = reg.availability("top").unwrap();
        assert!((a_top - a_m * a_m).abs() < 1e-12);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn workbench_json_roundtrip() {
        let mut reg = ModelRegistry::new();
        reg.set_parameter("lambda", 0.003);
        reg.add_markov("m", two_state_markov(Value::param("lambda"), 0.4.into())).unwrap();
        reg.add_rbd(
            "top",
            RbdSpec::k_of_n(
                1,
                vec![RbdSpec::leaf(Value::model("m")), RbdSpec::leaf(Value::constant(0.99))],
            ),
        )
        .unwrap();
        let mut s = SemiMarkovSpec::new();
        let a = s.state("a", 1.0, SojournDistribution::Weibull { shape: 2.0, scale: 100.0 });
        let b2 = s.state("b", 0.0, SojournDistribution::Deterministic { value: 1.0 });
        s.jump(a, b2, 1.0);
        s.jump(b2, a, 1.0);
        reg.add_semi_markov("smp", s).unwrap();

        let json = reg.to_json();
        let back = ModelRegistry::from_json(&json).unwrap();
        assert_eq!(back.model_names(), reg.model_names());
        assert_eq!(back.parameter("lambda"), Some(0.003));
        // Solutions survive the round trip.
        for name in ["m", "top", "smp"] {
            assert!(
                (reg.availability(name).unwrap() - back.availability(name).unwrap()).abs() < 1e-15,
                "{name}"
            );
        }
        assert!(ModelRegistry::from_json("{ not json").is_err());
    }

    #[test]
    fn build_markov_exposes_the_chain() {
        let mut reg = ModelRegistry::new();
        reg.set_parameter("lambda", 0.01);
        reg.add_markov("m", two_state_markov(Value::param("lambda"), 1.0.into())).unwrap();
        let chain = reg.build_markov("m").unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.transitions()[0].rate, 0.01);
        // RBD models are not chains.
        reg.add_rbd("r", RbdSpec::leaf(Value::constant(0.9))).unwrap();
        assert!(reg.build_markov("r").is_err());
        assert!(reg.build_markov("ghost").is_err());
    }

    #[test]
    fn interval_availability_and_mttf() {
        let mut reg = ModelRegistry::new();
        reg.add_markov("m", two_state_markov(0.001.into(), 0.5.into())).unwrap();
        let ss = reg.availability("m").unwrap();
        let iv = reg.interval_availability("m", 10_000.0).unwrap();
        assert!(iv >= ss && iv <= 1.0);
        // Single exponential failure mode: MTTF = 1/lambda.
        let mttf = reg.mttf("m").unwrap();
        assert!((mttf - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn parameter_updates_change_results() {
        let mut reg = ModelRegistry::new();
        reg.set_parameter("lambda", 0.01);
        reg.add_markov("m", two_state_markov(Value::param("lambda"), 1.0.into())).unwrap();
        let a1 = reg.availability("m").unwrap();
        reg.set_parameter("lambda", 0.1);
        let a2 = reg.availability("m").unwrap();
        assert!(a2 < a1);
    }
}
