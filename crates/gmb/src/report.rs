//! Documentation generation for registries.

use std::fmt::Write as _;

use crate::error::GmbError;
use crate::registry::ModelRegistry;

/// Renders an availability summary for every model in the registry.
///
/// # Errors
///
/// Propagates the first solve error.
pub fn registry_report(registry: &ModelRegistry) -> Result<String, GmbError> {
    let mut out = String::new();
    let _ = writeln!(out, "GMB model registry report");
    let _ = writeln!(out, "=========================");
    let _ = writeln!(out, "{:<32} {:>14} {:>16}", "model", "availability", "downtime min/y");
    for name in registry.model_names() {
        let a = registry.availability(name)?;
        let _ = writeln!(out, "{:<32} {:>14.9} {:>16.3}", name, a, (1.0 - a) * 365.0 * 24.0 * 60.0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MarkovSpec, RbdSpec, Value};

    #[test]
    fn report_lists_every_model() {
        let mut reg = ModelRegistry::new();
        let mut m = MarkovSpec::new();
        let up = m.state("up", 1.0);
        let down = m.state("down", 0.0);
        m.transition(up, down, Value::constant(0.001));
        m.transition(down, up, Value::constant(1.0));
        reg.add_markov("server", m).unwrap();
        reg.add_rbd(
            "site",
            RbdSpec::parallel(vec![
                RbdSpec::leaf(Value::model("server")),
                RbdSpec::leaf(Value::model("server")),
            ]),
        )
        .unwrap();
        let report = registry_report(&reg).unwrap();
        assert!(report.contains("server"));
        assert!(report.contains("site"));
    }

    #[test]
    fn report_propagates_errors() {
        let mut reg = ModelRegistry::new();
        reg.add_rbd("broken", RbdSpec::leaf(Value::model("ghost"))).unwrap();
        assert!(registry_report(&reg).is_err());
    }
}
