//! GMB — the Graphical Model Builder equivalent.
//!
//! The paper's second module "provides general, graphical Markov,
//! semi-Markov and reliability block diagram (RBD) modeling capabilities
//! for use by RAS experts", with a *hierarchical approach*: models can
//! reference other models. This crate is the programmatic equivalent of
//! that workbench:
//!
//! * [`ModelRegistry`] — a named collection of Markov chains,
//!   semi-Markov processes, and RBDs. An RBD component's availability
//!   may be a constant, a named parameter, or *the solved availability
//!   of another model* — the hierarchy. Markov transition rates may also
//!   be named parameters, enabling parametric analysis without
//!   rebuilding models.
//! * [`parametric`] — sweep any named parameter and collect measure
//!   curves.
//! * [`dot`] — Graphviz export of Markov chains and RBD trees ("graphical
//!   output").
//! * [`report`] — text documentation generation.
//!
//! # Example: hierarchical RBD over a Markov leaf
//!
//! ```
//! use rascad_gmb::{MarkovSpec, ModelRegistry, RbdSpec, Value};
//!
//! # fn main() -> Result<(), rascad_gmb::GmbError> {
//! let mut reg = ModelRegistry::new();
//! reg.set_parameter("lambda", 1e-4);
//!
//! // A 2-state Markov model for one server.
//! let mut server = MarkovSpec::new();
//! let up = server.state("up", 1.0);
//! let down = server.state("down", 0.0);
//! server.transition(up, down, Value::param("lambda"));
//! server.transition(down, up, Value::constant(0.5));
//! reg.add_markov("server", server)?;
//!
//! // Two servers in parallel, hierarchically referencing the chain.
//! let rbd = RbdSpec::parallel(vec![
//!     RbdSpec::leaf(Value::model("server")),
//!     RbdSpec::leaf(Value::model("server")),
//! ]);
//! reg.add_rbd("site", rbd)?;
//!
//! let a = reg.availability("site")?;
//! assert!(a > 0.9999);
//! # Ok(())
//! # }
//! ```

pub mod dot;
pub mod error;
pub mod parametric;
pub mod registry;
pub mod report;

pub use error::GmbError;
pub use registry::{MarkovSpec, ModelRegistry, RbdSpec, SemiMarkovSpec, Value};
