//! Parametric analysis over registry parameters.

use crate::error::GmbError;
use crate::registry::ModelRegistry;

/// One point of a parametric curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// The swept parameter's value.
    pub value: f64,
    /// The model availability at that value.
    pub availability: f64,
    /// Yearly downtime in minutes at that value.
    pub yearly_downtime_minutes: f64,
}

/// Sweeps a named parameter of the registry and solves `model` at each
/// value. The registry is left at its original parameter value.
///
/// # Errors
///
/// * [`GmbError::UnknownParameter`] if the parameter was never set.
/// * Solve errors from the model.
pub fn sweep_parameter(
    registry: &mut ModelRegistry,
    model: &str,
    parameter: &str,
    values: &[f64],
) -> Result<Vec<CurvePoint>, GmbError> {
    let original = registry
        .parameter(parameter)
        .ok_or_else(|| GmbError::UnknownParameter { name: parameter.to_string() })?;
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        registry.set_parameter(parameter, v);
        let availability = match registry.availability(model) {
            Ok(a) => a,
            Err(e) => {
                registry.set_parameter(parameter, original);
                return Err(e);
            }
        };
        out.push(CurvePoint {
            value: v,
            availability,
            yearly_downtime_minutes: (1.0 - availability) * 365.0 * 24.0 * 60.0,
        });
    }
    registry.set_parameter(parameter, original);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MarkovSpec, Value};

    fn registry() -> ModelRegistry {
        let mut reg = ModelRegistry::new();
        reg.set_parameter("lambda", 0.001);
        let mut m = MarkovSpec::new();
        let up = m.state("up", 1.0);
        let down = m.state("down", 0.0);
        m.transition(up, down, Value::param("lambda"));
        m.transition(down, up, Value::constant(0.5));
        reg.add_markov("m", m).unwrap();
        reg
    }

    #[test]
    fn sweep_produces_monotone_curve() {
        let mut reg = registry();
        let pts = sweep_parameter(&mut reg, "m", "lambda", &[1e-4, 1e-3, 1e-2]).unwrap();
        assert_eq!(pts.len(), 3);
        assert!(pts[0].availability > pts[1].availability);
        assert!(pts[1].availability > pts[2].availability);
        assert!(pts[2].yearly_downtime_minutes > pts[1].yearly_downtime_minutes);
    }

    #[test]
    fn parameter_restored_after_sweep() {
        let mut reg = registry();
        sweep_parameter(&mut reg, "m", "lambda", &[0.5]).unwrap();
        assert_eq!(reg.parameter("lambda"), Some(0.001));
    }

    #[test]
    fn parameter_restored_even_on_error() {
        let mut reg = registry();
        // Negative rate makes the chain builder fail mid-sweep.
        let r = sweep_parameter(&mut reg, "m", "lambda", &[0.1, -1.0]);
        assert!(r.is_err());
        assert_eq!(reg.parameter("lambda"), Some(0.001));
    }

    #[test]
    fn unknown_parameter_rejected() {
        let mut reg = registry();
        assert!(matches!(
            sweep_parameter(&mut reg, "m", "ghost", &[1.0]).unwrap_err(),
            GmbError::UnknownParameter { .. }
        ));
    }
}
