//! Binary-level chaos suite: drives `rascad solve --inject <plan.toml>`
//! against the compiled binary and asserts the contract end to end —
//! typed errors on stderr, the documented exit codes (4 strict, 8
//! best-effort partial), and uninjected block rows byte-identical to a
//! clean run.
//!
//! Requires the `fault-inject` feature (see `[[test]]` in Cargo.toml).

use std::path::PathBuf;
use std::process::Command;

fn rascad(args: &[&str]) -> (Option<i32>, String, String) {
    // Failing runs dump the flight recorder; keep it out of the cwd.
    let scratch = std::env::temp_dir().join("rascad_chaos_flight_scratch.jsonl");
    rascad_flight(args, &scratch)
}

fn rascad_flight(args: &[&str], flight_path: &std::path::Path) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rascad"))
        .args(args)
        .env("RASCAD_FLIGHT_PATH", flight_path)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const SPEC: &str = r#"
diagram "Sys" {
    block "A" {
        quantity = 1
        min_quantity = 1
        mtbf = 10000 h
    }
    block "B" {
        quantity = 1
        min_quantity = 1
        mtbf = 20000 h
    }
    block "Box" {
        quantity = 1
        min_quantity = 1
        mtbf = 1000000 h
        subdiagram "Internals" {
            block "CPU" {
                quantity = 1
                min_quantity = 1
                mtbf = 50000 h
            }
        }
    }
}
"#;

/// Writes the shared spec and a fault plan to unique temp files.
fn fixture(tag: &str, plan: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let spec_path = dir.join(format!("rascad_chaos_{tag}.rascad"));
    let plan_path = dir.join(format!("rascad_chaos_{tag}.toml"));
    std::fs::write(&spec_path, SPEC).unwrap();
    std::fs::write(&plan_path, plan).unwrap();
    (spec_path, plan_path)
}

fn cleanup(paths: &[&PathBuf]) {
    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn best_effort_panic_yields_partial_report_and_exit_8() {
    let (spec, plan) = fixture("panic_be", "[[inject]]\nblock = \"B\"\nkind = \"panic\"\n");
    let s = spec.to_str().unwrap();

    let (code, clean, _) = rascad(&["solve", s]);
    assert_eq!(code, Some(0));

    let (code, partial, stderr) =
        rascad(&["solve", s, "--best-effort", "--inject", plan.to_str().unwrap()]);
    assert_eq!(code, Some(8), "{stderr}");
    assert!(partial.contains("PARTIAL RESULT: 1 of 4 block(s) failed to solve"), "{partial}");
    assert!(partial.contains("True availability bounds"), "{partial}");
    assert!(partial.contains("failed blocks (rolled up optimistically"), "{partial}");
    assert!(partial.contains("worker panicked while solving block \"Sys/B\""), "{partial}");
    assert!(stderr.contains("partial result"), "{stderr}");
    // The caught worker panic must not spray the default panic hook's
    // backtrace onto stderr.
    assert!(!stderr.contains("stack backtrace"), "caught panic leaked a backtrace:\n{stderr}");

    // Every surviving block's report row is byte-identical to the
    // clean run's row.
    for path in ["Sys/A", "Sys/Box", "Sys/Box/CPU"] {
        let clean_row = clean
            .lines()
            .find(|l| l.trim_start().starts_with(path))
            .unwrap_or_else(|| panic!("clean run misses {path}"));
        assert!(
            partial.lines().any(|l| l == clean_row),
            "row for {path} diverged:\nclean:   {clean_row}\npartial:\n{partial}"
        );
    }
    // The injected block's row moved out of the measures table into the
    // failure table.
    let (table, failures) = partial.split_once("failed blocks").expect("failure table present");
    assert!(!table.lines().any(|l| l.trim_start().starts_with("Sys/B ")), "{table}");
    assert!(failures.contains("Sys/B"), "{failures}");

    cleanup(&[&spec, &plan]);
}

#[test]
fn strict_panic_is_a_typed_solver_error_with_exit_4() {
    let (spec, plan) = fixture("panic_strict", "[[inject]]\nblock = \"B\"\nkind = \"panic\"\n");
    let (code, stdout, stderr) =
        rascad(&["solve", spec.to_str().unwrap(), "--inject", plan.to_str().unwrap()]);
    assert_eq!(code, Some(4), "{stderr}");
    assert!(stdout.is_empty(), "{stdout}");
    assert!(stderr.contains("worker panicked while solving block \"Sys/B\""), "{stderr}");
    cleanup(&[&spec, &plan]);
}

#[test]
fn not_converged_reports_the_full_fallback_trail() {
    let (spec, plan) = fixture("notconv", "[[inject]]\nblock = \"A\"\nkind = \"not-converged\"\n");
    let (code, _, stderr) =
        rascad(&["solve", spec.to_str().unwrap(), "--inject", plan.to_str().unwrap()]);
    assert_eq!(code, Some(4), "{stderr}");
    // Default method is GTH (the last rung), so the fault surfaces as
    // its own typed error rather than a one-rung ladder wrapper.
    assert!(stderr.contains("singular"), "{stderr}");
    cleanup(&[&spec, &plan]);
}

#[test]
fn timeout_fault_is_typed_fast_and_exit_4() {
    let (spec, plan) = fixture("timeout", "[[inject]]\nblock = \"Box/CPU\"\nkind = \"timeout\"\n");
    let t0 = std::time::Instant::now();
    let (code, _, stderr) =
        rascad(&["solve", spec.to_str().unwrap(), "--inject", plan.to_str().unwrap()]);
    assert!(t0.elapsed() < std::time::Duration::from_secs(20), "took {:?}", t0.elapsed());
    assert_eq!(code, Some(4), "{stderr}");
    assert!(stderr.contains("exceeded its wall-clock budget"), "{stderr}");
    cleanup(&[&spec, &plan]);
}

#[test]
fn nan_rate_fault_fails_certification_not_silently() {
    // The fault corrupts the solution vector *after* a successful solve,
    // so no solver-internal check can see it — the independent
    // certificate must, and the run must die with a solver error.
    let (spec, plan) = fixture("nanrate", "[[inject]]\nblock = \"A\"\nkind = \"nan-rate\"\n");
    let (code, _, stderr) =
        rascad(&["solve", spec.to_str().unwrap(), "--inject", plan.to_str().unwrap()]);
    assert_eq!(code, Some(4), "{stderr}");
    assert!(stderr.contains("failed certification"), "{stderr}");
    cleanup(&[&spec, &plan]);
}

#[test]
fn malformed_plan_is_a_usage_error() {
    let (spec, plan) = fixture("badplan", "[[inject]]\nblock = \"A\"\nkind = \"gremlins\"\n");
    let (code, _, stderr) =
        rascad(&["solve", spec.to_str().unwrap(), "--inject", plan.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("fault plan"), "{stderr}");
    cleanup(&[&spec, &plan]);
}

#[test]
fn degraded_solve_dumps_the_flight_recorder() {
    let (spec, plan) = fixture("flight", "[[inject]]\nblock = \"B\"\nkind = \"panic\"\n");
    let flight = std::env::temp_dir().join("rascad_chaos_flight_dump.jsonl");
    std::fs::remove_file(&flight).ok();

    let (code, _, stderr) = rascad_flight(
        &["solve", spec.to_str().unwrap(), "--best-effort", "--inject", plan.to_str().unwrap()],
        &flight,
    );
    assert_eq!(code, Some(8), "{stderr}");
    assert!(stderr.contains("flight recorder:"), "no dump notice on stderr:\n{stderr}");

    let dump = std::fs::read_to_string(&flight).expect("flight dump written");
    let mut lines = dump.lines();
    let header = rascad_obs::json::parse(lines.next().expect("header line")).unwrap();
    assert_eq!(header.get("flight_recorder").unwrap().as_str(), Some("rascad"));
    let incidents = match header.get("incidents").unwrap() {
        rascad_obs::json::Value::Arr(items) => items,
        other => panic!("incidents is not an array: {other:?}"),
    };
    assert!(incidents.iter().any(|i| i.as_str().is_some_and(|s| s.contains("Sys/B"))), "{dump}");
    // Every event line is strict JSON, and the failing block's solve
    // span made it into the ring.
    let mut saw_failed_span = false;
    for line in lines {
        let v = rascad_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable flight line `{line}`: {e}"));
        let kind = v.get("kind").and_then(|k| k.as_str()).expect("event has a kind");
        if kind == "span_end"
            && v.get("detail").and_then(|d| d.as_str()).is_some_and(|d| d.contains("Sys/B"))
        {
            saw_failed_span = true;
        }
    }
    assert!(saw_failed_span, "failed block's span missing from dump:\n{dump}");

    cleanup(&[&spec, &plan, &flight]);
}

#[test]
fn empty_plan_leaves_the_solve_clean() {
    let (spec, plan) = fixture("emptyplan", "# no injections\nseed = 7\n");
    let s = spec.to_str().unwrap();
    let (code, clean, _) = rascad(&["solve", s]);
    assert_eq!(code, Some(0));
    let (code, with_plan, _) =
        rascad(&["solve", s, "--best-effort", "--inject", plan.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert_eq!(clean, with_plan, "an empty plan must not perturb the report");
    cleanup(&[&spec, &plan]);
}
