//! End-to-end tests of the compiled `rascad` binary.

use std::process::Command;

fn rascad(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = rascad_code(args);
    (code == Some(0), stdout, stderr)
}

fn rascad_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rascad")).args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_exits_zero() {
    let (ok, stdout, _) = rascad(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_stderr() {
    let (ok, _, stderr) = rascad(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));
}

#[test]
fn pipeline_library_to_solve() {
    let dir = std::env::temp_dir();
    let path = dir.join("rascad_binary_test.rascad");

    let (ok, dsl, _) = rascad(&["library", "cluster"]);
    assert!(ok);
    std::fs::write(&path, &dsl).unwrap();

    let p = path.to_str().unwrap();
    let (ok, report, _) = rascad(&["solve", p]);
    assert!(ok);
    assert!(report.contains("Yearly downtime"));

    let (ok, dot, _) = rascad(&["dot", p, "Cluster Node"]);
    assert!(ok);
    assert!(dot.starts_with("digraph"));

    let (ok, modes, _) = rascad(&["modes", p, "Cluster Node"]);
    assert!(ok);
    assert!(modes.contains('%'));

    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_a_clean_error() {
    let (ok, _, stderr) = rascad(&["solve", "/definitely/not/here.rascad"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
}

#[test]
fn exit_codes_distinguish_error_classes() {
    // Usage errors: unknown command, missing operand.
    let (code, _, _) = rascad_code(&["bogus"]);
    assert_eq!(code, Some(2));
    let (code, _, _) = rascad_code(&["solve"]);
    assert_eq!(code, Some(2));

    // Spec errors: file exists but fails to parse.
    let dir = std::env::temp_dir();
    let bad = dir.join("rascad_binary_bad.rascad");
    std::fs::write(&bad, "this is not a spec").unwrap();
    let (code, _, stderr) = rascad_code(&["solve", bad.to_str().unwrap()]);
    assert_eq!(code, Some(3), "{stderr}");
    // The diagnostic formatter prints the underlying cause chain.
    assert!(stderr.contains("error: invalid specification"), "{stderr}");
    assert!(stderr.contains("caused by:"), "{stderr}");
    std::fs::remove_file(&bad).ok();

    // I/O errors: unreadable path.
    let (code, _, _) = rascad_code(&["solve", "/definitely/not/here.rascad"]);
    assert_eq!(code, Some(5));
}

#[test]
fn trace_to_stdout_emits_parseable_json_lines() {
    let dir = std::env::temp_dir();
    let path = dir.join("rascad_binary_trace.rascad");
    let (ok, dsl, _) = rascad(&["library", "workgroup"]);
    assert!(ok);
    std::fs::write(&path, &dsl).unwrap();

    let (ok, stdout, _) = rascad(&["solve", "--trace", "-", path.to_str().unwrap()]);
    assert!(ok);
    // The report is still there alongside the trace.
    assert!(stdout.contains("Yearly downtime"), "{stdout}");

    // Every trace line is strict JSON; collect the span names seen.
    let mut span_names = Vec::new();
    let mut metrics_seen = false;
    let mut trace_lines = 0;
    for line in stdout.lines().filter(|l| l.starts_with('{')) {
        trace_lines += 1;
        let v = rascad_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable trace line `{line}`: {e}"));
        match v.get("ev").and_then(|e| e.as_str()) {
            Some("span_start" | "span_end") => {
                span_names.push(v.get("name").unwrap().as_str().unwrap().to_string());
                if v.get("ev").unwrap().as_str() == Some("span_end") {
                    assert!(v.get("elapsed_us").unwrap().as_f64().unwrap() >= 0.0);
                }
            }
            Some("metrics") => {
                metrics_seen = true;
                let counters = v.get("counters").unwrap();
                assert!(counters.get("core.blocks_generated").is_some(), "{line}");
            }
            other => panic!("unexpected event {other:?} in `{line}`"),
        }
    }
    assert!(trace_lines > 4, "expected a real trace, got {trace_lines} lines");
    assert!(metrics_seen, "no metrics event in trace");
    // Parse, generate, and solve stages must all be covered.
    for expected in ["spec.parse_dsl", "core.generate_block", "core.solve_spec", "markov.gth"] {
        assert!(
            span_names.iter().any(|n| n == expected),
            "span `{expected}` missing from {span_names:?}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_to_file_and_timings_to_stderr() {
    let dir = std::env::temp_dir();
    let spec_path = dir.join("rascad_binary_trace_file.rascad");
    let trace_path = dir.join("rascad_binary_trace_file.jsonl");
    let (ok, dsl, _) = rascad(&["library", "cluster"]);
    assert!(ok);
    std::fs::write(&spec_path, &dsl).unwrap();

    let (ok, stdout, stderr) = rascad(&[
        "--timings",
        "solve",
        "--trace",
        trace_path.to_str().unwrap(),
        spec_path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    // Report stays clean on stdout; the timing table goes to stderr.
    assert!(stdout.contains("Yearly downtime"));
    assert!(!stdout.contains("span_start"));
    assert!(stderr.contains("rascad timings"), "{stderr}");
    assert!(stderr.contains("core.solve_spec"), "{stderr}");
    // Exactly one summary table despite drain + uninstall both flushing.
    assert_eq!(stderr.matches("rascad timings").count(), 1, "{stderr}");

    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(trace.lines().count() > 4);
    for line in trace.lines() {
        rascad_obs::json::parse(line).expect("trace file line parses");
    }
    std::fs::remove_file(&spec_path).ok();
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn stats_command_reports_pipeline() {
    let dir = std::env::temp_dir();
    let path = dir.join("rascad_binary_stats.rascad");
    let (ok, dsl, _) = rascad(&["library", "e10000"]);
    assert!(ok);
    std::fs::write(&path, &dsl).unwrap();

    let (ok, stdout, _) = rascad(&["stats", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("stage timings:"), "{stdout}");
    assert!(stdout.contains("blocks per chain type:"), "{stdout}");
    assert!(stdout.contains("solver diagnostics:"), "{stdout}");
    // A fresh process has a cold solve cache, so the solver really ran.
    assert!(stdout.contains("markov.solves{method=\"gth\"}"), "{stdout}");
    // Robustness counters are always listed, zero-filled on a clean run.
    for counter in ["engine.worker_panics", "solve.fallbacks", "solve.timeouts"] {
        assert!(stdout.contains(counter), "missing {counter}:\n{stdout}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn stats_prometheus_page_passes_the_validator() {
    let dir = std::env::temp_dir();
    let path = dir.join("rascad_binary_stats_prom.rascad");
    let (ok, dsl, _) = rascad(&["library", "cluster"]);
    assert!(ok);
    std::fs::write(&path, &dsl).unwrap();

    let (ok, page, stderr) = rascad(&["stats", path.to_str().unwrap(), "--prometheus"]);
    assert!(ok, "{stderr}");
    rascad_obs::prometheus::validate(&page).unwrap_or_else(|e| panic!("invalid page: {e}\n{page}"));
    assert!(page.contains("rascad_markov_solves{method=\"gth\"}"), "{page}");
    assert!(page.contains("rascad_core_cache_misses{kind=\"steady\"}"), "{page}");
    assert!(page.contains("rascad_markov_gth_states_bucket"), "{page}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_out_writes_a_scrape_ready_snapshot() {
    let dir = std::env::temp_dir();
    let spec_path = dir.join("rascad_binary_metrics_out.rascad");
    let prom_path = dir.join("rascad_binary_metrics_out.prom");
    let (ok, dsl, _) = rascad(&["library", "workgroup"]);
    assert!(ok);
    std::fs::write(&spec_path, &dsl).unwrap();

    let (ok, stdout, stderr) = rascad(&[
        "--metrics-out",
        prom_path.to_str().unwrap(),
        "solve",
        spec_path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Yearly downtime"), "{stdout}");

    let page = std::fs::read_to_string(&prom_path).unwrap();
    rascad_obs::prometheus::validate(&page).unwrap_or_else(|e| panic!("invalid page: {e}\n{page}"));
    assert!(page.contains("rascad_core_blocks_generated"), "{page}");
    assert!(page.contains("rascad_markov_solves{method=\"gth\"}"), "{page}");
    std::fs::remove_file(&spec_path).ok();
    std::fs::remove_file(&prom_path).ok();
}

#[test]
fn trace_out_writes_a_loadable_chrome_trace() {
    let dir = std::env::temp_dir();
    let spec_path = dir.join("rascad_binary_trace_out.rascad");
    let trace_path = dir.join("rascad_binary_trace_out.json");
    let (ok, dsl, _) = rascad(&["library", "cluster"]);
    assert!(ok);
    std::fs::write(&spec_path, &dsl).unwrap();

    let (ok, stdout, stderr) = rascad(&[
        "--trace-out",
        trace_path.to_str().unwrap(),
        "solve",
        spec_path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Yearly downtime"), "{stdout}");

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let names = rascad_obs::chrome_trace::validate(&text)
        .unwrap_or_else(|e| panic!("invalid chrome trace: {e}\n{text}"));
    for expected in ["spec.parse_dsl", "core.generate_block", "core.solve_spec", "markov.gth"] {
        assert!(names.iter().any(|n| n == expected), "span `{expected}` missing from {names:?}");
    }
    std::fs::remove_file(&spec_path).ok();
    std::fs::remove_file(&trace_path).ok();
}
