//! End-to-end tests of the compiled `rascad` binary.

use std::process::Command;

fn rascad(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rascad"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_exits_zero() {
    let (ok, stdout, _) = rascad(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_command_exits_nonzero_with_stderr() {
    let (ok, _, stderr) = rascad(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("error:"));
}

#[test]
fn pipeline_library_to_solve() {
    let dir = std::env::temp_dir();
    let path = dir.join("rascad_binary_test.rascad");

    let (ok, dsl, _) = rascad(&["library", "cluster"]);
    assert!(ok);
    std::fs::write(&path, &dsl).unwrap();

    let p = path.to_str().unwrap();
    let (ok, report, _) = rascad(&["solve", p]);
    assert!(ok);
    assert!(report.contains("Yearly downtime"));

    let (ok, dot, _) = rascad(&["dot", p, "Cluster Node"]);
    assert!(ok);
    assert!(dot.starts_with("digraph"));

    let (ok, modes, _) = rascad(&["modes", p, "Cluster Node"]);
    assert!(ok);
    assert!(modes.contains('%'));

    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_a_clean_error() {
    let (ok, _, stderr) = rascad(&["solve", "/definitely/not/here.rascad"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
}
