//! `rascad` — command-line front end for the RAScad reproduction.
//!
//! Replaces the paper's web GUI with a scriptable interface over the
//! same pipeline: parse an engineering spec, generate the availability
//! models, solve, and report.

use std::error::Error as _;
use std::process::ExitCode;

mod commands;

/// Failure exit codes that warrant a flight-recorder post-mortem:
/// solver failures and everything past them (I/O, regression, lint,
/// partial results). Usage and spec errors (2, 3) fail before any
/// instrumented work runs.
const FLIGHT_DUMP_THRESHOLD: u8 = 4;

/// Writes the flight-recorder rings to `rascad-flight-<pid>.jsonl` (or
/// `$RASCAD_FLIGHT_PATH`) when the run failed hard or an incident
/// (worker panic, degraded solve) was recorded. Quiet when the rings
/// are empty — a usage error has no post-mortem worth keeping.
fn dump_flight_recorder(exit_code: u8) {
    let failed = exit_code >= FLIGHT_DUMP_THRESHOLD || rascad_obs::flight::has_incident();
    if !failed || !rascad_obs::flight::events_recorded() {
        return;
    }
    let path = std::env::var("RASCAD_FLIGHT_PATH")
        .unwrap_or_else(|_| format!("rascad-flight-{}.jsonl", std::process::id()));
    match rascad_obs::flight::dump_to(std::path::Path::new(&path)) {
        Ok(events) => eprintln!("flight recorder: {events} event(s) written to {path}"),
        Err(e) => eprintln!("warning: cannot write flight recording to `{path}`: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match commands::run(&args) {
        Ok(output) => {
            print!("{output}");
            0
        }
        // A partial result is still the command's useful output: the
        // report goes to stdout like a success, the classification to
        // stderr, and the exit code (8) tells scripts it is incomplete.
        Err(commands::CliError::Partial(report)) => {
            print!("{report}");
            eprintln!("error: partial result: some blocks failed to solve (best-effort mode)");
            8
        }
        Err(e) => {
            eprintln!("error: {e}");
            let mut cause = e.source();
            while let Some(c) = cause {
                eprintln!("  caused by: {c}");
                cause = c.source();
            }
            e.exit_code()
        }
    };
    dump_flight_recorder(code);
    ExitCode::from(code)
}
