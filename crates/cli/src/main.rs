//! `rascad` — command-line front end for the RAScad reproduction.
//!
//! Replaces the paper's web GUI with a scriptable interface over the
//! same pipeline: parse an engineering spec, generate the availability
//! models, solve, and report.

use std::error::Error as _;
use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        // A partial result is still the command's useful output: the
        // report goes to stdout like a success, the classification to
        // stderr, and the exit code (8) tells scripts it is incomplete.
        Err(commands::CliError::Partial(report)) => {
            print!("{report}");
            eprintln!("error: partial result: some blocks failed to solve (best-effort mode)");
            ExitCode::from(8)
        }
        Err(e) => {
            eprintln!("error: {e}");
            let mut cause = e.source();
            while let Some(c) = cause {
                eprintln!("  caused by: {c}");
                cause = c.source();
            }
            ExitCode::from(e.exit_code())
        }
    }
}
