//! `sweep` command: parametric analysis from the command line.

use std::fmt::Write as _;

use rascad_core::sweep::{lin_space, log_space, sweep as run_sweep};
use rascad_spec::units::Hours;
use rascad_spec::SystemSpec;

use super::CliError;

/// Runs `sweep <block-path> <param> <from> <to> <points> [--log]`.
pub fn sweep(spec: &SystemSpec, args: &[&str]) -> Result<String, CliError> {
    let [path, param, from, to, points, rest @ ..] = args else {
        return Err(CliError::usage(
            "usage: sweep <spec> <block-path> <param> <from> <to> <points> [--log]",
        ));
    };
    let from: f64 = from.parse().map_err(|_| CliError::usage(format!("bad from `{from}`")))?;
    let to: f64 = to.parse().map_err(|_| CliError::usage(format!("bad to `{to}`")))?;
    let points: usize =
        points.parse().map_err(|_| CliError::usage(format!("bad point count `{points}`")))?;
    let logarithmic = rest.contains(&"--log");

    if spec.root.find(path).is_none() {
        return Err(CliError::usage(format!("no block at path `{path}`")));
    }
    let values =
        if logarithmic { log_space(from, to, points) } else { lin_space(from, to, points) }?;

    let param_owned = param.to_string();
    let path_owned = path.to_string();
    let results = run_sweep(spec, &values, move |s, v| {
        let block = s.root.find_mut(&path_owned).expect("checked above");
        match param_owned.as_str() {
            "mtbf" => block.params.mtbf = Hours(v),
            "tresp" => block.params.service_response = Hours(v),
            "pcd" => block.params.p_correct_diagnosis = v,
            // Unknown params leave the spec untouched; the caller sees a
            // flat curve, which the check below turns into an error.
            _ => {}
        }
    })?;

    let mut out = String::new();
    let _ = writeln!(out, "# sweep of {} on {}", args[1], args[0]);
    let _ = writeln!(out, "{:>14} {:>16} {:>18}", "value", "availability", "downtime-min/yr");
    for p in &results {
        let _ = writeln!(
            out,
            "{:>14.6} {:>16.9} {:>18.3}",
            p.value, p.solution.system.availability, p.solution.system.yearly_downtime_minutes
        );
    }
    if results.len() > 1 {
        let first = results.first().expect("nonempty").solution.system.availability;
        if results.iter().all(|p| (p.solution.system.availability - first).abs() < 1e-15)
            && !matches!(args[1], "mtbf" | "tresp" | "pcd")
        {
            return Err(CliError::usage(format!(
                "unknown sweep parameter `{}` (mtbf, tresp, pcd)",
                args[1]
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_library::datacenter::data_center;

    #[test]
    fn sweeps_mtbf_logarithmically() {
        let spec = data_center();
        let out =
            sweep(&spec, &["Server Box/System Board", "mtbf", "10000", "1000000", "4", "--log"])
                .unwrap();
        assert_eq!(out.lines().count(), 2 + 4);
        assert!(out.contains("availability"));
    }

    #[test]
    fn rejects_unknown_parameter() {
        let spec = data_center();
        assert!(sweep(&spec, &["Server Box/System Board", "warp", "1", "2", "3"],).is_err());
    }

    #[test]
    fn rejects_bad_usage() {
        let spec = data_center();
        assert!(sweep(&spec, &["only", "three", "args"]).is_err());
        assert!(sweep(&spec, &["Ghost", "mtbf", "1", "2", "3"]).is_err());
        assert!(sweep(&spec, &["Server Box", "mtbf", "x", "2", "3"]).is_err());
    }
}
