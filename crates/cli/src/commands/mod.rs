//! Command dispatch and implementations.
//!
//! Every command is a pure function from parsed arguments to an output
//! string, so the whole CLI is unit-testable without spawning
//! processes.

use std::fmt;

mod bench;
mod fielddata;
mod lint;
mod serve;
mod simulate;
mod solve;
mod stats;
mod sweep;

/// CLI error, classified so `main` can pick an exit code and print the
/// cause chain.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments: unknown command, missing operand, unparseable
    /// number, unknown block path. Exit code 2.
    Usage(String),
    /// The specification failed to parse or validate. Exit code 3.
    Spec(rascad_spec::SpecError),
    /// Model generation or solving failed. Exit code 4.
    Solver(rascad_core::CoreError),
    /// A file could not be read or written. Exit code 5.
    Io { path: String, source: std::io::Error },
    /// `bench --compare` detected a performance regression past the
    /// failure threshold. Exit code 6. Carries the rendered comparison
    /// report.
    Regression(String),
    /// `lint` found blocking diagnostics (errors, or warnings under
    /// `--deny warnings`). Exit code 7. Carries the rendered report.
    Lint(String),
    /// `solve --best-effort` completed but some blocks failed: the
    /// rendered report is a partial, optimistic result. Exit code 8.
    /// `main` prints the carried report to stdout (it is still the
    /// command's useful output) and the classification to stderr.
    Partial(String),
    /// `serve` could not bind, or shut down without draining every
    /// in-flight request inside the drain timeout. Exit code 9.
    Serve(String),
}

impl CliError {
    /// Shorthand for a usage error.
    pub(crate) fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }

    /// Process exit code for this error class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Spec(_) => 3,
            CliError::Solver(_) => 4,
            CliError::Io { .. } => 5,
            CliError::Regression(_) => 6,
            CliError::Lint(_) => 7,
            CliError::Partial(_) => 8,
            CliError::Serve(_) => 9,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::Spec(_) => f.write_str("invalid specification"),
            CliError::Solver(_) => f.write_str("solving failed"),
            CliError::Io { path, .. } => write!(f, "cannot access `{path}`"),
            CliError::Regression(report) => {
                writeln!(f, "performance regression detected")?;
                f.write_str(report)
            }
            CliError::Lint(report) => {
                writeln!(f, "lint found blocking diagnostics")?;
                f.write_str(report)
            }
            CliError::Partial(_) => {
                f.write_str("partial result: some blocks failed to solve (best-effort mode)")
            }
            CliError::Serve(msg) => write!(f, "serve failed: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_)
            | CliError::Regression(_)
            | CliError::Lint(_)
            | CliError::Partial(_)
            | CliError::Serve(_) => None,
            CliError::Spec(e) => Some(e),
            CliError::Solver(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
        }
    }
}

impl From<rascad_spec::SpecError> for CliError {
    fn from(e: rascad_spec::SpecError) -> Self {
        CliError::Spec(e)
    }
}

impl From<rascad_core::CoreError> for CliError {
    fn from(e: rascad_core::CoreError) -> Self {
        // A spec-validation failure surfaced through the solver is still
        // a spec error for exit-code purposes.
        match e {
            rascad_core::CoreError::Spec(e) => CliError::Spec(e),
            other => CliError::Solver(other),
        }
    }
}

const USAGE: &str = "\
rascad — automatic generation of availability models (RAScad, DSN 2002)

USAGE:
    rascad [OPTIONS] <COMMAND> [ARGS]

OPTIONS (apply to every command):
    --trace <file|->                    write pipeline trace events as JSON lines to the
                                        file (`-` for stdout)
    --trace-out <file>                  write a Chrome trace-event JSON timeline (loadable
                                        in Perfetto / chrome://tracing; one lane per
                                        worker thread)
    --metrics-out <file>                dump a scrape-ready Prometheus text-format
                                        (exposition 0.0.4) metrics snapshot at exit
    --timings                           print a per-span timing summary to stderr on exit
    --no-lint                           skip the automatic pre-solve lint gate
    --threads <n>                       solver worker threads (default: RASCAD_THREADS env
                                        or the machine's available parallelism); results
                                        are bit-identical at any thread count

A bounded flight recorder is always on: when a run exits with code >= 4,
a worker panics, or --best-effort degrades a solve, the last events per
thread are dumped as JSON lines to rascad-flight-<pid>.jsonl (override
the path with the RASCAD_FLIGHT_PATH environment variable).

COMMANDS:
    check <spec.rascad>                 validate a specification
    lint <spec.rascad|-> [--format human|json|sarif] [--deny warnings]
         [--no-tier-b] [--tier-c] [--max-cut-order N]
                                        static analysis: spec diagnostics (RAS001–RAS021)
                                        plus generated-model diagnostics (RAS101–RAS105);
                                        --tier-c adds structural analyses over the
                                        BDD-compiled structure function (RAS201–RAS205:
                                        cut sets up to order N, SPOFs, importance,
                                        symmetry classes, cut-set bound); `-` reads DSL
                                        from stdin; blocking findings exit 7
    lint --explain <RASxxx>             document one diagnostic code (example and remedy)
    solve <spec.rascad> [--strict|--best-effort] [--explain]
          [--convergence-out FILE] [--inject <plan.toml>]
                                        solve and print the availability report;
                                        --strict (default) fails fast on the first block
                                        that cannot be solved, --best-effort rolls failed
                                        blocks up as explicit availability bounds and
                                        exits 8 with a partial report; --explain appends
                                        per-solver convergence traces and per-block
                                        solution certificates (verdict, residual,
                                        condition estimate); --convergence-out writes the
                                        traces as versioned JSON (rascad-convergence/v1);
                                        --inject installs a deterministic fault plan
                                        (builds with the `fault-inject` feature only)
    stats <spec.rascad> [--prometheus [--out FILE]]
                                        pipeline statistics: blocks per chain type, state
                                        counts, per-stage wall time, solver diagnostics;
                                        --prometheus renders the solve-run metrics as a
                                        Prometheus exposition page instead (to FILE with
                                        --out, else stdout)
    dot <spec.rascad> <block-path>      print the generated Markov chain as Graphviz DOT
    modes <spec.rascad> <block-path>    first-failure mode attribution for one block
    importance <spec.rascad>            rank blocks by system-level importance
    sweep <spec.rascad> <block-path> <param> <from> <to> <points> [--log]
                                        parametric sweep (param: mtbf|tresp|pcd)
    compare <a.rascad> <b.rascad>       solve two candidate architectures and diff the measures
    simulate <spec.rascad> [horizon-hours [replications [seed]]]
                                        Monte-Carlo cross-check of the analytic solution
    fielddata <spec.rascad> [months [servers [seed]]]
                                        generate synthetic field data and compare with the model
    bench [--quick|--full] [--sweep] [--label L] [--out F] [--json] [--compare BASE.json]
          [--warn-ratio R] [--fail-ratio R] [--floor-us US] [--residual-floor R]
                                        run the deterministic benchmark suite and write a
                                        versioned BENCH_<label>.json (per-stage timings, span
                                        aggregates, solver diagnostics, per-stage accuracy
                                        certificates, environment metadata); --compare checks
                                        against a baseline and exits 6 on a timing regression
                                        past the fail threshold OR an accuracy regression (a
                                        certified residual grown 10x past the baseline and
                                        above the residual floor, default 1e-13); --sweep runs
                                        the sweep-scaling workload instead (solve engine vs
                                        the sequential baseline, cache stats, bit-identity)
    bench --validate <file.json>        check that a BENCH document parses and is schema-valid
    bench --serve [--validate] [--out F] [--label L]
                                        load-test an in-process daemon (>=1k solves, bursts,
                                        deadline probe) and write BENCH_serve.json with the
                                        latency histogram and shed rate
    serve [--addr HOST:PORT] [--max-inflight N] [--max-per-tenant N] [--retry-after SECS]
          [--max-specs N] [--drain-secs N] [--metrics-final FILE]
                                        run the availability-model daemon: POST /v1/specs
                                        (multi-tenant spec store), /v1/solve (deadline_ms,
                                        best_effort), /v1/sweep, /v1/lint; GET /metrics,
                                        /healthz, /readyz; bounded admission sheds 429 +
                                        Retry-After; SIGTERM drains in-flight solves and
                                        exits 0 (unclean drain or bind failure exits 9)
    library [name]                      print a library model as DSL
                                        (names: datacenter, e10000, cluster, workgroup)
    reference                           print the DSL parameter reference (Markdown)
    help                                show this message

EXIT CODES:
    0 success   2 usage   3 invalid spec   4 solver failure   5 I/O error
    6 performance regression (bench --compare)   7 blocking lint diagnostics
    8 partial result (solve --best-effort with failed blocks)
    9 serve failure (bind error or unclean drain)
";

/// Observability options stripped from the command line before
/// dispatch.
#[derive(Debug, Default)]
struct ObsOptions {
    /// `--trace <file|->`: JSON-lines event destination.
    trace: Option<String>,
    /// `--trace-out <file>`: Chrome trace-event JSON timeline.
    trace_out: Option<String>,
    /// `--metrics-out <file>`: Prometheus snapshot written at exit.
    metrics_out: Option<String>,
    /// `--timings`: human-readable span summary on stderr.
    timings: bool,
    /// `--no-lint`: skip the automatic Tier A gate before
    /// `solve`/`sweep`/`simulate`.
    no_lint: bool,
    /// `--threads <n>`: solver worker-thread override.
    threads: Option<usize>,
}

/// RAII guard: installs the requested sinks on construction and
/// drains + uninstalls tracing when dropped, so every exit path (including
/// `?` early returns) flushes the aggregated metrics.
struct ObsSession {
    active: bool,
    /// Destination for the Prometheus snapshot written on drop.
    metrics_out: Option<String>,
}

impl ObsSession {
    fn start(opts: &ObsOptions) -> Result<ObsSession, CliError> {
        let mut sinks: Vec<Box<dyn rascad_obs::Sink>> = Vec::new();
        if let Some(target) = &opts.trace {
            if target == "-" {
                sinks.push(Box::new(rascad_obs::JsonLinesSink::new(std::io::stdout())));
            } else {
                let file = std::fs::File::create(target)
                    .map_err(|source| CliError::Io { path: target.clone(), source })?;
                sinks.push(Box::new(rascad_obs::JsonLinesSink::new(file)));
            }
        }
        if let Some(target) = &opts.trace_out {
            let file = std::fs::File::create(target)
                .map_err(|source| CliError::Io { path: target.clone(), source })?;
            sinks.push(Box::new(rascad_obs::ChromeTraceSink::new(std::io::BufWriter::new(file))));
        }
        if opts.timings {
            sinks.push(Box::new(rascad_obs::SummarySink::new(std::io::stderr())));
        }
        // `--metrics-out` needs the registry but no sink: an empty
        // install still accumulates metrics for the exit snapshot.
        let active = !sinks.is_empty() || opts.metrics_out.is_some();
        if active {
            rascad_obs::install(sinks);
        }
        Ok(ObsSession { active, metrics_out: opts.metrics_out.clone() })
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        // Snapshot before drain: drain resets the registry.
        if let Some(path) = &self.metrics_out {
            let snap = rascad_obs::MetricsRegistry::global().snapshot();
            let page = rascad_obs::prometheus::encode(&snap);
            if let Err(e) = std::fs::write(path, page) {
                eprintln!("warning: cannot write metrics snapshot to `{path}`: {e}");
            }
        }
        rascad_obs::drain();
        rascad_obs::uninstall();
    }
}

/// Splits the global `--trace` / `--timings` flags from the command
/// words.
fn split_global_flags(args: &[String]) -> Result<(Vec<&str>, ObsOptions), CliError> {
    let mut opts = ObsOptions::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--trace" => {
                let target = it
                    .next()
                    .ok_or_else(|| CliError::usage("--trace needs a file argument (or `-`)"))?;
                opts.trace = Some(target.to_string());
            }
            "--trace-out" => {
                let target = it
                    .next()
                    .ok_or_else(|| CliError::usage("--trace-out needs a file argument"))?;
                opts.trace_out = Some(target.to_string());
            }
            "--metrics-out" => {
                let target = it
                    .next()
                    .ok_or_else(|| CliError::usage("--metrics-out needs a file argument"))?;
                opts.metrics_out = Some(target.to_string());
            }
            "--timings" => opts.timings = true,
            "--no-lint" => opts.no_lint = true,
            "--threads" => {
                let n = it
                    .next()
                    .ok_or_else(|| CliError::usage("--threads needs a positive integer"))?;
                let n: usize = n
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage(format!("bad thread count `{n}`")))?;
                opts.threads = Some(n);
            }
            other => rest.push(other),
        }
    }
    Ok((rest, opts))
}

/// Runs a command line; returns the text to print.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message for bad usage, bad
/// specs, solver failures, or I/O problems; see [`CliError::exit_code`].
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (words, obs) = split_global_flags(args)?;
    if let Some(n) = obs.threads {
        rascad_core::set_thread_override(n);
    }
    // The flight recorder is always on: a bounded per-thread ring that
    // costs one branch per instrumentation call and is only dumped by
    // `main` when the run fails (exit >= 4 or a recorded incident).
    rascad_obs::flight::arm();
    let _session = ObsSession::start(&obs)?;
    dispatch(&words, !obs.no_lint)
}

/// Runs the Tier A lint gate ahead of a pipeline command (when
/// enabled): error findings abort before the generator runs, warnings
/// go to stderr.
fn gate(spec: &rascad_spec::SystemSpec, lint_enabled: bool) -> Result<(), CliError> {
    if lint_enabled {
        lint::tier_a_gate(spec)?;
    }
    Ok(())
}

fn dispatch(args: &[&str], lint_enabled: bool) -> Result<String, CliError> {
    let mut it = args.iter().copied();
    match it.next() {
        None | Some("help" | "--help" | "-h") => Ok(USAGE.to_string()),
        Some("check") => {
            let spec = load(it.next())?;
            spec.validate()?;
            Ok(format!(
                "ok: {} blocks across {} level(s)\n",
                spec.root.total_blocks(),
                spec.root.depth()
            ))
        }
        Some("lint") => {
            let rest: Vec<&str> = it.collect();
            lint::lint(&rest)
        }
        Some("solve") => {
            let spec = load(it.next())?;
            gate(&spec, lint_enabled)?;
            let rest: Vec<&str> = it.collect();
            solve::solve(&spec, &rest)
        }
        Some("stats") => {
            let rest: Vec<&str> = it.collect();
            stats::stats(&rest)
        }
        Some("dot") => {
            let spec = load(it.next())?;
            let path = it.next().ok_or_else(|| CliError::usage("dot needs a block path"))?;
            solve::dot(&spec, path)
        }
        Some("modes") => {
            let spec = load(it.next())?;
            let path = it.next().ok_or_else(|| CliError::usage("modes needs a block path"))?;
            solve::modes(&spec, path)
        }
        Some("importance") => {
            let spec = load(it.next())?;
            solve::importance(&spec)
        }
        Some("compare") => {
            let a = load(it.next())?;
            let b = load(it.next())?;
            let cmp = rascad_core::compare_architectures(
                a.root.name.clone(),
                &a,
                b.root.name.clone(),
                &b,
            )?;
            Ok(format!("{cmp}\n"))
        }
        Some("sweep") => {
            let spec = load(it.next())?;
            gate(&spec, lint_enabled)?;
            let rest: Vec<&str> = it.collect();
            sweep::sweep(&spec, &rest)
        }
        Some("simulate") => {
            let spec = load(it.next())?;
            gate(&spec, lint_enabled)?;
            let rest: Vec<&str> = it.collect();
            simulate::simulate(&spec, &rest)
        }
        Some("fielddata") => {
            let spec = load(it.next())?;
            let rest: Vec<&str> = it.collect();
            fielddata::fielddata(&spec, &rest)
        }
        Some("bench") => {
            let rest: Vec<&str> = it.collect();
            bench::bench(&rest)
        }
        Some("serve") => {
            let rest: Vec<&str> = it.collect();
            serve::serve(&rest)
        }
        Some("library") => {
            let name = it.next().unwrap_or("datacenter");
            library(name)
        }
        Some("reference") => Ok(rascad_spec::dsl::reference::markdown()),
        Some(other) => {
            Err(CliError::usage(format!("unknown command `{other}`; try `rascad help`")))
        }
    }
}

fn load(path: Option<&str>) -> Result<rascad_spec::SystemSpec, CliError> {
    let path = path.ok_or_else(|| CliError::usage("missing spec file argument"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })?;
    let spec = if path.ends_with(".json") {
        rascad_spec::SystemSpec::from_json(&text)?
    } else {
        rascad_spec::SystemSpec::from_dsl(&text)?
    };
    Ok(spec)
}

fn library(name: &str) -> Result<String, CliError> {
    let spec = match name {
        "datacenter" => rascad_library::datacenter::data_center(),
        "e10000" => rascad_library::e10000::e10000(),
        "cluster" => rascad_library::cluster::two_node_cluster(
            rascad_library::cluster::ClusterConfig::default(),
        ),
        "workgroup" => rascad_library::workgroup::workgroup(),
        other => {
            return Err(CliError::usage(format!(
                "unknown library model `{other}` (datacenter, e10000, cluster, workgroup)"
            )));
        }
    };
    Ok(spec.to_dsl())
}

/// Parses a positional numeric argument with a default.
pub(crate) fn num_arg<T: std::str::FromStr>(
    args: &[&str],
    index: usize,
    default: T,
    what: &str,
) -> Result<T, CliError> {
    match args.get(index) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| CliError::usage(format!("bad {what}: `{s}`"))),
    }
}

/// Serializes tests that install the process-global `rascad-obs`
/// subscriber (`stats`, `bench`): concurrent installs would clobber
/// each other's sinks and cross-drain metrics.
#[cfg(test)]
pub(crate) fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(ToString::to_string).collect();
        run(&v)
    }

    #[test]
    fn help_and_empty() {
        assert!(run_strs(&[]).unwrap().contains("USAGE"));
        assert!(run_strs(&["help"]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command() {
        assert!(run_strs(&["frobnicate"]).is_err());
    }

    #[test]
    fn library_models_print_dsl() {
        for name in ["datacenter", "e10000", "cluster", "workgroup"] {
            let out = run_strs(&["library", name]).unwrap();
            assert!(out.contains("diagram"), "{name}");
            // Output must be parseable again.
            rascad_spec::SystemSpec::from_dsl(&out).unwrap();
        }
        assert!(run_strs(&["library", "nope"]).is_err());
    }

    #[test]
    fn check_solve_dot_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir();
        let path = dir.join("rascad_cli_test.rascad");
        let spec = rascad_library::datacenter::data_center();
        std::fs::write(&path, spec.to_dsl()).unwrap();
        let p = path.to_str().unwrap();

        let out = run_strs(&["check", p]).unwrap();
        assert!(out.contains("ok:"));

        let out = run_strs(&["solve", p]).unwrap();
        assert!(out.contains("Yearly downtime"));

        let out = run_strs(&["dot", p, "Server Box/CPU Module"]).unwrap();
        assert!(out.starts_with("digraph"));

        assert!(run_strs(&["dot", p, "No/Such/Block"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reference_is_markdown() {
        let out = run_strs(&["reference"]).unwrap();
        assert!(out.starts_with("# `.rascad` parameter reference"));
        assert!(out.contains("p_correct_diagnosis"));
    }

    #[test]
    fn compare_two_specs() {
        let dir = std::env::temp_dir();
        let pa = dir.join("rascad_cmp_a.rascad");
        let pb = dir.join("rascad_cmp_b.rascad");
        std::fs::write(&pa, rascad_library::e10000::e10000().to_dsl()).unwrap();
        std::fs::write(&pb, rascad_library::e10000::e10000_no_redundancy().to_dsl()).unwrap();
        let out = run_strs(&["compare", pa.to_str().unwrap(), pb.to_str().unwrap()]).unwrap();
        assert!(out.contains("winner on downtime"));
        assert!(out.contains("E10000 Server"));
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }

    #[test]
    fn missing_file_reported() {
        assert!(run_strs(&["solve", "/no/such/file.rascad"]).is_err());
        assert!(run_strs(&["solve"]).is_err());
    }

    #[test]
    fn lint_subcommand_dispatches() {
        let dir = std::env::temp_dir();
        let path = dir.join("rascad_cli_lint.rascad");
        std::fs::write(&path, rascad_library::e10000::e10000().to_dsl()).unwrap();
        let out = run_strs(&["lint", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("info(s)") || out.contains("no findings"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn presolve_gate_rejects_bad_spec_before_generation() {
        let dir = std::env::temp_dir();
        let path = dir.join("rascad_cli_gate.rascad");
        // min_quantity > quantity: the gate must reject with exit 3.
        std::fs::write(&path, "diagram \"S\" { block \"A\" { quantity = 1\n min_quantity = 2 } }")
            .unwrap();
        let p = path.to_str().unwrap();
        for cmd in [
            vec!["solve", p],
            vec!["sweep", p, "A", "mtbf", "1000", "2000", "2"],
            vec!["simulate", p, "100", "2", "1"],
        ] {
            let err = run_strs(&cmd).unwrap_err();
            assert_eq!(err.exit_code(), 3, "{cmd:?}");
        }
        // --no-lint skips the gate; the error then comes from the
        // solver path instead (still a spec error, but proves the
        // gate is bypassable).
        assert!(run_strs(&["--no-lint", "solve", p]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn no_lint_flag_accepted_on_clean_spec() {
        let dir = std::env::temp_dir();
        let path = dir.join("rascad_cli_nolint.rascad");
        std::fs::write(&path, rascad_library::workgroup::workgroup().to_dsl()).unwrap();
        let out = run_strs(&["--no-lint", "solve", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("Yearly downtime"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_specs_accepted() {
        let dir = std::env::temp_dir();
        let path = dir.join("rascad_cli_test.json");
        let spec = rascad_library::cluster::two_node_cluster(Default::default());
        std::fs::write(&path, spec.to_json().unwrap()).unwrap();
        let out = run_strs(&["check", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("ok:"));
        std::fs::remove_file(&path).ok();
    }
}
