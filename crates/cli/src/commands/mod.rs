//! Command dispatch and implementations.
//!
//! Every command is a pure function from parsed arguments to an output
//! string, so the whole CLI is unit-testable without spawning
//! processes.

use std::fmt;

mod fielddata;
mod simulate;
mod solve;
mod sweep;

/// CLI error: a message for the user.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<rascad_spec::SpecError> for CliError {
    fn from(e: rascad_spec::SpecError) -> Self {
        CliError(e.to_string())
    }
}

impl From<rascad_core::CoreError> for CliError {
    fn from(e: rascad_core::CoreError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

const USAGE: &str = "\
rascad — automatic generation of availability models (RAScad, DSN 2002)

USAGE:
    rascad <COMMAND> [ARGS]

COMMANDS:
    check <spec.rascad>                 validate a specification
    solve <spec.rascad>                 solve and print the availability report
    dot <spec.rascad> <block-path>      print the generated Markov chain as Graphviz DOT
    modes <spec.rascad> <block-path>    first-failure mode attribution for one block
    importance <spec.rascad>            rank blocks by system-level importance
    sweep <spec.rascad> <block-path> <param> <from> <to> <points> [--log]
                                        parametric sweep (param: mtbf|tresp|pcd)
    compare <a.rascad> <b.rascad>       solve two candidate architectures and diff the measures
    simulate <spec.rascad> [horizon-hours [replications [seed]]]
                                        Monte-Carlo cross-check of the analytic solution
    fielddata <spec.rascad> [months [servers [seed]]]
                                        generate synthetic field data and compare with the model
    library [name]                      print a library model as DSL
                                        (names: datacenter, e10000, cluster, workgroup)
    reference                           print the DSL parameter reference (Markdown)
    help                                show this message
";

/// Runs a command line; returns the text to print.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message for bad usage, bad
/// specs, or solver failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => Ok(USAGE.to_string()),
        Some("check") => {
            let spec = load(it.next())?;
            spec.validate()?;
            Ok(format!(
                "ok: {} blocks across {} level(s)\n",
                spec.root.total_blocks(),
                spec.root.depth()
            ))
        }
        Some("solve") => solve::solve(&load(it.next())?),
        Some("dot") => {
            let spec = load(it.next())?;
            let path = it
                .next()
                .ok_or_else(|| CliError("dot needs a block path".into()))?;
            solve::dot(&spec, path)
        }
        Some("modes") => {
            let spec = load(it.next())?;
            let path = it
                .next()
                .ok_or_else(|| CliError("modes needs a block path".into()))?;
            solve::modes(&spec, path)
        }
        Some("importance") => {
            let spec = load(it.next())?;
            solve::importance(&spec)
        }
        Some("compare") => {
            let a = load(it.next())?;
            let b = load(it.next())?;
            let cmp = rascad_core::compare_architectures(
                a.root.name.clone(),
                &a,
                b.root.name.clone(),
                &b,
            )?;
            Ok(format!("{cmp}\n"))
        }
        Some("sweep") => {
            let spec = load(it.next())?;
            let rest: Vec<&str> = it.collect();
            sweep::sweep(&spec, &rest)
        }
        Some("simulate") => {
            let spec = load(it.next())?;
            let rest: Vec<&str> = it.collect();
            simulate::simulate(&spec, &rest)
        }
        Some("fielddata") => {
            let spec = load(it.next())?;
            let rest: Vec<&str> = it.collect();
            fielddata::fielddata(&spec, &rest)
        }
        Some("library") => {
            let name = it.next().unwrap_or("datacenter");
            library(name)
        }
        Some("reference") => Ok(rascad_spec::dsl::reference::markdown()),
        Some(other) => Err(CliError(format!("unknown command `{other}`; try `rascad help`"))),
    }
}

fn load(path: Option<&str>) -> Result<rascad_spec::SystemSpec, CliError> {
    let path = path.ok_or_else(|| CliError("missing spec file argument".into()))?;
    let text = std::fs::read_to_string(path)?;
    let spec = if path.ends_with(".json") {
        rascad_spec::SystemSpec::from_json(&text)?
    } else {
        rascad_spec::SystemSpec::from_dsl(&text)?
    };
    Ok(spec)
}

fn library(name: &str) -> Result<String, CliError> {
    let spec = match name {
        "datacenter" => rascad_library::datacenter::data_center(),
        "e10000" => rascad_library::e10000::e10000(),
        "cluster" => {
            rascad_library::cluster::two_node_cluster(rascad_library::cluster::ClusterConfig::default())
        }
        "workgroup" => rascad_library::workgroup::workgroup(),
        other => {
            return Err(CliError(format!(
                "unknown library model `{other}` (datacenter, e10000, cluster, workgroup)"
            )));
        }
    };
    Ok(spec.to_dsl())
}

/// Parses a positional numeric argument with a default.
pub(crate) fn num_arg<T: std::str::FromStr>(
    args: &[&str],
    index: usize,
    default: T,
    what: &str,
) -> Result<T, CliError> {
    match args.get(index) {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| CliError(format!("bad {what}: `{s}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(ToString::to_string).collect();
        run(&v)
    }

    #[test]
    fn help_and_empty() {
        assert!(run_strs(&[]).unwrap().contains("USAGE"));
        assert!(run_strs(&["help"]).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command() {
        assert!(run_strs(&["frobnicate"]).is_err());
    }

    #[test]
    fn library_models_print_dsl() {
        for name in ["datacenter", "e10000", "cluster", "workgroup"] {
            let out = run_strs(&["library", name]).unwrap();
            assert!(out.contains("diagram"), "{name}");
            // Output must be parseable again.
            rascad_spec::SystemSpec::from_dsl(&out).unwrap();
        }
        assert!(run_strs(&["library", "nope"]).is_err());
    }

    #[test]
    fn check_solve_dot_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir();
        let path = dir.join("rascad_cli_test.rascad");
        let spec = rascad_library::datacenter::data_center();
        std::fs::write(&path, spec.to_dsl()).unwrap();
        let p = path.to_str().unwrap();

        let out = run_strs(&["check", p]).unwrap();
        assert!(out.contains("ok:"));

        let out = run_strs(&["solve", p]).unwrap();
        assert!(out.contains("Yearly downtime"));

        let out = run_strs(&["dot", p, "Server Box/CPU Module"]).unwrap();
        assert!(out.starts_with("digraph"));

        assert!(run_strs(&["dot", p, "No/Such/Block"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reference_is_markdown() {
        let out = run_strs(&["reference"]).unwrap();
        assert!(out.starts_with("# `.rascad` parameter reference"));
        assert!(out.contains("p_correct_diagnosis"));
    }

    #[test]
    fn compare_two_specs() {
        let dir = std::env::temp_dir();
        let pa = dir.join("rascad_cmp_a.rascad");
        let pb = dir.join("rascad_cmp_b.rascad");
        std::fs::write(&pa, rascad_library::e10000::e10000().to_dsl()).unwrap();
        std::fs::write(&pb, rascad_library::e10000::e10000_no_redundancy().to_dsl()).unwrap();
        let out =
            run_strs(&["compare", pa.to_str().unwrap(), pb.to_str().unwrap()]).unwrap();
        assert!(out.contains("winner on downtime"));
        assert!(out.contains("E10000 Server"));
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }

    #[test]
    fn missing_file_reported() {
        assert!(run_strs(&["solve", "/no/such/file.rascad"]).is_err());
        assert!(run_strs(&["solve"]).is_err());
    }

    #[test]
    fn json_specs_accepted() {
        let dir = std::env::temp_dir();
        let path = dir.join("rascad_cli_test.json");
        let spec = rascad_library::cluster::two_node_cluster(Default::default());
        std::fs::write(&path, spec.to_json().unwrap()).unwrap();
        let out = run_strs(&["check", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("ok:"));
        std::fs::remove_file(&path).ok();
    }
}
