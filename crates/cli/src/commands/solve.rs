//! `solve` and `dot` commands.

use rascad_core::{generator::generate_block, report, solve_spec};
use rascad_spec::SystemSpec;

use super::CliError;

/// Solves a spec and renders the report.
///
/// `--strict` (default) fails fast on the first unsolvable block;
/// `--best-effort` rolls failed blocks up as explicit availability
/// bounds and reports the partial result via [`CliError::Partial`]
/// (exit code 8). `--inject <plan.toml>` installs a deterministic fault
/// plan for the duration of the solve — only in builds with the
/// `fault-inject` feature.
pub fn solve(spec: &SystemSpec, args: &[&str]) -> Result<String, CliError> {
    let mut best_effort = false;
    let mut plan_path: Option<&str> = None;
    let mut it = args.iter().copied();
    while let Some(a) = it.next() {
        match a {
            "--strict" => best_effort = false,
            "--best-effort" => best_effort = true,
            "--inject" => {
                plan_path = Some(
                    it.next().ok_or_else(|| CliError::usage("--inject needs a fault-plan file"))?,
                );
            }
            other => return Err(CliError::usage(format!("unknown solve option `{other}`"))),
        }
    }
    let _guard = install_plan(plan_path)?;
    if best_effort {
        let sol = rascad_core::solve_spec_best_effort(spec, rascad_markov::SteadyStateMethod::Gth)?;
        let rendered = report::system_report(&spec.root.name, &sol);
        if sol.is_degraded() {
            return Err(CliError::Partial(rendered));
        }
        return Ok(rendered);
    }
    let sol = solve_spec(spec)?;
    Ok(report::system_report(&spec.root.name, &sol))
}

/// Reads, parses, and installs a fault plan; the returned guard keeps
/// it active until the solve finishes.
#[cfg(feature = "fault-inject")]
fn install_plan(path: Option<&str>) -> Result<Option<rascad_fault::PlanGuard>, CliError> {
    let Some(path) = path else { return Ok(None) };
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })?;
    let plan = rascad_fault::FaultPlan::parse(&text)
        .map_err(|e| CliError::usage(format!("bad fault plan `{path}`: {e}")))?;
    Ok(Some(rascad_fault::PlanGuard::install(plan)))
}

/// Without the `fault-inject` feature there are no injection points in
/// the pipeline, so `--inject` must be an explicit error rather than a
/// silent no-op.
#[cfg(not(feature = "fault-inject"))]
fn install_plan(path: Option<&str>) -> Result<Option<()>, CliError> {
    match path {
        None => Ok(None),
        Some(_) => Err(CliError::usage(
            "this build has no fault-injection support; rebuild with `--features fault-inject`",
        )),
    }
}

/// Renders one block's generated chain as DOT.
pub fn dot(spec: &SystemSpec, block_path: &str) -> Result<String, CliError> {
    let block = spec
        .root
        .find(block_path)
        .ok_or_else(|| CliError::usage(format!("no block at path `{block_path}`")))?;
    let model = generate_block(&block.params, &spec.globals)?;
    Ok(report::chain_dot(&model))
}

/// Prints the first-failure mode attribution for one block.
pub fn modes(spec: &SystemSpec, block_path: &str) -> Result<String, CliError> {
    let block = spec
        .root
        .find(block_path)
        .ok_or_else(|| CliError::usage(format!("no block at path `{block_path}`")))?;
    let model = generate_block(&block.params, &spec.globals)?;
    let attribution = rascad_core::measures::failure_mode_attribution(&model)?;
    let mut out = format!(
        "first-failure mode attribution for \"{}\" (type {}, {} states):\n",
        block_path,
        model.model_type,
        model.state_count()
    );
    for (label, p) in attribution {
        out.push_str(&format!("  {label:<16} {:>7.3}%\n", p * 100.0));
    }
    Ok(out)
}

/// Prints the system-level block importance ranking.
pub fn importance(spec: &SystemSpec) -> Result<String, CliError> {
    let sol = solve_spec(spec)?;
    let ranking = sol.block_importance()?;
    let mut out = format!(
        "system-level block importance for \"{}\" (availability {:.9}):\n",
        spec.root.name, sol.system.availability
    );
    out.push_str(&format!(
        "{:<52} {:>12} {:>12} {:>12}\n",
        "block", "birnbaum", "criticality", "improvement"
    ));
    for (name, c) in ranking {
        out.push_str(&format!(
            "{:<52} {:>12.6} {:>12.6} {:>12.3e}\n",
            name, c.birnbaum, c.criticality, c.improvement_potential
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_library::datacenter::data_center;

    #[test]
    fn solve_renders_report() {
        let out = solve(&data_center(), &[]).unwrap();
        assert!(out.contains("System steady-state availability"));
        assert!(out.contains("Data Center System"));
    }

    #[test]
    fn best_effort_on_a_clean_spec_matches_strict() {
        let strict = solve(&data_center(), &["--strict"]).unwrap();
        let best = solve(&data_center(), &["--best-effort"]).unwrap();
        assert_eq!(strict, best);
        assert!(!strict.contains("PARTIAL RESULT"));
    }

    #[test]
    fn unknown_solve_option_is_a_usage_error() {
        let err = solve(&data_center(), &["--frobnicate"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = solve(&data_center(), &["--inject"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn inject_without_the_feature_is_an_explicit_error() {
        let err = solve(&data_center(), &["--inject", "/no/such/plan.toml"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("fault-inject"), "{err}");
    }

    #[test]
    fn dot_renders_chain() {
        let out = dot(&data_center(), "Server Box/System Board").unwrap();
        assert!(out.contains("digraph"));
        assert!(out.contains("Ok"));
    }

    #[test]
    fn dot_unknown_block() {
        assert!(dot(&data_center(), "Ghost").is_err());
    }

    #[test]
    fn importance_ranks_all_blocks() {
        let out = importance(&data_center()).unwrap();
        assert!(out.contains("criticality"));
        // Every block path appears.
        assert_eq!(out.matches("Data Center System/").count(), 23);
    }

    #[test]
    fn modes_renders_attribution() {
        let out = modes(&data_center(), "Server Box/System Board").unwrap();
        assert!(out.contains("first-failure mode attribution"));
        assert!(out.contains('%'));
        assert!(modes(&data_center(), "Ghost").is_err());
    }
}
