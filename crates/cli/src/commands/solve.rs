//! `solve` and `dot` commands.

use rascad_core::{generator::generate_block, report, solve_spec, SystemSolution};
use rascad_obs::trace::SolveTrace;
use rascad_spec::SystemSpec;

use super::CliError;

/// Solves a spec and renders the report.
///
/// `--strict` (default) fails fast on the first unsolvable block;
/// `--best-effort` rolls failed blocks up as explicit availability
/// bounds and reports the partial result via [`CliError::Partial`]
/// (exit code 8). `--inject <plan.toml>` installs a deterministic fault
/// plan for the duration of the solve — only in builds with the
/// `fault-inject` feature. `--explain` appends the per-solver
/// convergence traces and per-block solution certificates to the
/// report; `--convergence-out FILE` writes the traces as a versioned
/// JSON document (schema `rascad-convergence/v1`, validated before it
/// is written).
pub fn solve(spec: &SystemSpec, args: &[&str]) -> Result<String, CliError> {
    let mut best_effort = false;
    let mut explain = false;
    let mut convergence_out: Option<&str> = None;
    let mut plan_path: Option<&str> = None;
    let mut it = args.iter().copied();
    while let Some(a) = it.next() {
        match a {
            "--strict" => best_effort = false,
            "--best-effort" => best_effort = true,
            "--explain" => explain = true,
            "--convergence-out" => {
                convergence_out = Some(
                    it.next().ok_or_else(|| CliError::usage("--convergence-out needs a file"))?,
                );
            }
            "--inject" => {
                plan_path = Some(
                    it.next().ok_or_else(|| CliError::usage("--inject needs a fault-plan file"))?,
                );
            }
            other => return Err(CliError::usage(format!("unknown solve option `{other}`"))),
        }
    }
    let _guard = install_plan(plan_path)?;
    let tracing = explain || convergence_out.is_some();
    if tracing {
        // Disarm first: a clean ring, not leftovers of an earlier solve
        // in this process.
        rascad_obs::trace::disarm();
        rascad_obs::trace::arm();
    }
    let result = if best_effort {
        rascad_core::solve_spec_best_effort(spec, rascad_markov::SteadyStateMethod::Gth)
    } else {
        solve_spec(spec)
    };
    let traces = if tracing { rascad_obs::trace::solves() } else { Vec::new() };
    let doc = if convergence_out.is_some() { Some(rascad_obs::trace::dump()) } else { None };
    if tracing {
        rascad_obs::trace::disarm();
    }
    // The convergence document is written even when the solve failed —
    // the trace of a diverging solve is exactly what a post-mortem
    // needs.
    if let (Some(path), Some(doc)) = (convergence_out, &doc) {
        rascad_obs::trace::validate(doc).map_err(|e| {
            CliError::usage(format!("internal: convergence document failed validation: {e}"))
        })?;
        let mut text = doc.to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)
            .map_err(|source| CliError::Io { path: path.to_string(), source })?;
    }
    let sol = result?;
    let mut rendered = report::system_report(&spec.root.name, &sol);
    if explain {
        rendered.push_str(&explain_sections(&sol, &traces));
    }
    if best_effort && sol.is_degraded() {
        return Err(CliError::Partial(rendered));
    }
    Ok(rendered)
}

/// Renders the `--explain` appendix: the convergence-trace table and
/// the per-block solution certificates.
fn explain_sections(sol: &SystemSolution, traces: &[SolveTrace]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\nConvergence traces ({} solve(s))\n", traces.len()));
    out.push_str(&format!(
        "  {:<10} {:<10} {:>6} {:>7} {:<13} {:>12} {:>10}\n",
        "method", "metric", "states", "steps", "outcome", "final", "elapsed"
    ));
    for t in traces {
        let last = t.steps.last().map_or("-".to_string(), |s| format!("{:.3e}", s.value));
        out.push_str(&format!(
            "  {:<10} {:<10} {:>6} {:>7} {:<13} {:>12} {:>8}us\n",
            t.method, t.metric, t.states, t.total_steps, t.outcome, last, t.elapsed_us
        ));
    }
    out.push_str("\nSolution certificates\n");
    out.push_str(&format!(
        "  {:<40} {:<7} {:<7} {:>12} {:>12} {:>10}\n",
        "block", "method", "verdict", "residual", "mass error", "condest"
    ));
    for b in &sol.blocks {
        let c = &b.certificate;
        let condest = c.condition_estimate.map_or("-".to_string(), |k| format!("{k:.3e}"));
        out.push_str(&format!(
            "  {:<40} {:<7} {:<7} {:>12.3e} {:>12.3e} {:>10}\n",
            b.path, c.method, c.verdict, c.residual_inf, c.prob_mass_error, condest
        ));
        if c.trail.len() > 1 {
            out.push_str(&format!("    trail: {}\n", c.trail.join("; ")));
        }
    }
    out
}

/// Reads, parses, and installs a fault plan; the returned guard keeps
/// it active until the solve finishes.
#[cfg(feature = "fault-inject")]
fn install_plan(path: Option<&str>) -> Result<Option<rascad_fault::PlanGuard>, CliError> {
    let Some(path) = path else { return Ok(None) };
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })?;
    let plan = rascad_fault::FaultPlan::parse(&text)
        .map_err(|e| CliError::usage(format!("bad fault plan `{path}`: {e}")))?;
    Ok(Some(rascad_fault::PlanGuard::install(plan)))
}

/// Without the `fault-inject` feature there are no injection points in
/// the pipeline, so `--inject` must be an explicit error rather than a
/// silent no-op.
#[cfg(not(feature = "fault-inject"))]
fn install_plan(path: Option<&str>) -> Result<Option<()>, CliError> {
    match path {
        None => Ok(None),
        Some(_) => Err(CliError::usage(
            "this build has no fault-injection support; rebuild with `--features fault-inject`",
        )),
    }
}

/// Renders one block's generated chain as DOT.
pub fn dot(spec: &SystemSpec, block_path: &str) -> Result<String, CliError> {
    let block = spec
        .root
        .find(block_path)
        .ok_or_else(|| CliError::usage(format!("no block at path `{block_path}`")))?;
    let model = generate_block(&block.params, &spec.globals)?;
    Ok(report::chain_dot(&model))
}

/// Prints the first-failure mode attribution for one block.
pub fn modes(spec: &SystemSpec, block_path: &str) -> Result<String, CliError> {
    let block = spec
        .root
        .find(block_path)
        .ok_or_else(|| CliError::usage(format!("no block at path `{block_path}`")))?;
    let model = generate_block(&block.params, &spec.globals)?;
    let attribution = rascad_core::measures::failure_mode_attribution(&model)?;
    let mut out = format!(
        "first-failure mode attribution for \"{}\" (type {}, {} states):\n",
        block_path,
        model.model_type,
        model.state_count()
    );
    for (label, p) in attribution {
        out.push_str(&format!("  {label:<16} {:>7.3}%\n", p * 100.0));
    }
    Ok(out)
}

/// Prints the system-level block importance ranking.
pub fn importance(spec: &SystemSpec) -> Result<String, CliError> {
    let sol = solve_spec(spec)?;
    let ranking = sol.block_importance()?;
    let mut out = format!(
        "system-level block importance for \"{}\" (availability {:.9}):\n",
        spec.root.name, sol.system.availability
    );
    out.push_str(&format!(
        "{:<52} {:>12} {:>12} {:>12}\n",
        "block", "birnbaum", "criticality", "improvement"
    ));
    for (name, c) in ranking {
        out.push_str(&format!(
            "{:<52} {:>12.6} {:>12.6} {:>12.3e}\n",
            name, c.birnbaum, c.criticality, c.improvement_potential
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_library::datacenter::data_center;

    #[test]
    fn solve_renders_report() {
        let out = solve(&data_center(), &[]).unwrap();
        assert!(out.contains("System steady-state availability"));
        assert!(out.contains("Data Center System"));
    }

    #[test]
    fn best_effort_on_a_clean_spec_matches_strict() {
        let strict = solve(&data_center(), &["--strict"]).unwrap();
        let best = solve(&data_center(), &["--best-effort"]).unwrap();
        assert_eq!(strict, best);
        assert!(!strict.contains("PARTIAL RESULT"));
    }

    #[test]
    fn unknown_solve_option_is_a_usage_error() {
        let err = solve(&data_center(), &["--frobnicate"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = solve(&data_center(), &["--inject"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[cfg(not(feature = "fault-inject"))]
    #[test]
    fn inject_without_the_feature_is_an_explicit_error() {
        let err = solve(&data_center(), &["--inject", "/no/such/plan.toml"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("fault-inject"), "{err}");
    }

    #[test]
    fn explain_appends_traces_and_certificates() {
        let _lock = crate::commands::obs_test_lock();
        let out = solve(&data_center(), &["--explain"]).unwrap();
        // The plain report is still there...
        assert!(out.contains("System steady-state availability"));
        // ...followed by the convergence-trace table...
        assert!(out.contains("Convergence traces"), "{out}");
        assert!(out.contains("gth"), "{out}");
        // ...and the certificate table with one row per solved block.
        assert!(out.contains("Solution certificates"), "{out}");
        assert!(out.contains("verdict"), "{out}");
        assert!(out.matches(" ok ").count() >= 23, "{out}");
        // Tracing is disarmed again afterwards.
        assert!(!rascad_obs::trace::armed());
    }

    /// A spec whose chains no other test solves: the process-global
    /// engine cache must miss, so the traced run actually invokes the
    /// solvers (a fully-cached solve correctly records zero traces).
    fn uncached_spec() -> rascad_spec::SystemSpec {
        use rascad_spec::units::Hours;
        let mut root = rascad_spec::Diagram::new("TraceMe");
        root.push(rascad_spec::BlockParams::new("Odd", 3, 2).with_mtbf(Hours(123_456.7)));
        root.push(rascad_spec::BlockParams::new("Ball", 2, 1).with_mtbf(Hours(98_765.4)));
        rascad_spec::SystemSpec::new(root, rascad_spec::GlobalParams::default())
    }

    #[test]
    fn convergence_out_round_trips_through_the_validator() {
        let _lock = crate::commands::obs_test_lock();
        let dir = std::env::temp_dir().join(format!("rascad-conv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("conv.json");
        let path_str = path.to_str().unwrap();

        let out = solve(&uncached_spec(), &["--convergence-out", path_str]).unwrap();
        // Without --explain the report itself is unchanged.
        assert!(!out.contains("Convergence traces"));

        let text = std::fs::read_to_string(&path).unwrap();
        let doc = rascad_obs::json::parse(&text).expect("file is valid JSON");
        let solves = rascad_obs::trace::validate(&doc).expect("document is schema-valid");
        assert!(solves > 0, "the solve must have recorded at least one trace");
        assert!(text.contains("rascad-convergence/v1"));
        assert!(!rascad_obs::trace::armed());
        std::fs::remove_dir_all(&dir).ok();

        // A missing operand is a usage error.
        let err = solve(&data_center(), &["--convergence-out"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn dot_renders_chain() {
        let out = dot(&data_center(), "Server Box/System Board").unwrap();
        assert!(out.contains("digraph"));
        assert!(out.contains("Ok"));
    }

    #[test]
    fn dot_unknown_block() {
        assert!(dot(&data_center(), "Ghost").is_err());
    }

    #[test]
    fn importance_ranks_all_blocks() {
        let out = importance(&data_center()).unwrap();
        assert!(out.contains("criticality"));
        // Every block path appears.
        assert_eq!(out.matches("Data Center System/").count(), 23);
    }

    #[test]
    fn modes_renders_attribution() {
        let out = modes(&data_center(), "Server Box/System Board").unwrap();
        assert!(out.contains("first-failure mode attribution"));
        assert!(out.contains('%'));
        assert!(modes(&data_center(), "Ghost").is_err());
    }
}
