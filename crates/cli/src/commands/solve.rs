//! `solve` and `dot` commands.

use rascad_core::{generator::generate_block, report, solve_spec};
use rascad_spec::SystemSpec;

use super::CliError;

/// Solves a spec and renders the report.
pub fn solve(spec: &SystemSpec) -> Result<String, CliError> {
    let sol = solve_spec(spec)?;
    Ok(report::system_report(&spec.root.name, &sol))
}

/// Renders one block's generated chain as DOT.
pub fn dot(spec: &SystemSpec, block_path: &str) -> Result<String, CliError> {
    let block = spec
        .root
        .find(block_path)
        .ok_or_else(|| CliError::usage(format!("no block at path `{block_path}`")))?;
    let model = generate_block(&block.params, &spec.globals)?;
    Ok(report::chain_dot(&model))
}

/// Prints the first-failure mode attribution for one block.
pub fn modes(spec: &SystemSpec, block_path: &str) -> Result<String, CliError> {
    let block = spec
        .root
        .find(block_path)
        .ok_or_else(|| CliError::usage(format!("no block at path `{block_path}`")))?;
    let model = generate_block(&block.params, &spec.globals)?;
    let attribution = rascad_core::measures::failure_mode_attribution(&model)?;
    let mut out = format!(
        "first-failure mode attribution for \"{}\" (type {}, {} states):\n",
        block_path,
        model.model_type,
        model.state_count()
    );
    for (label, p) in attribution {
        out.push_str(&format!("  {label:<16} {:>7.3}%\n", p * 100.0));
    }
    Ok(out)
}

/// Prints the system-level block importance ranking.
pub fn importance(spec: &SystemSpec) -> Result<String, CliError> {
    let sol = solve_spec(spec)?;
    let ranking = sol.block_importance()?;
    let mut out = format!(
        "system-level block importance for \"{}\" (availability {:.9}):\n",
        spec.root.name, sol.system.availability
    );
    out.push_str(&format!(
        "{:<52} {:>12} {:>12} {:>12}\n",
        "block", "birnbaum", "criticality", "improvement"
    ));
    for (name, c) in ranking {
        out.push_str(&format!(
            "{:<52} {:>12.6} {:>12.6} {:>12.3e}\n",
            name, c.birnbaum, c.criticality, c.improvement_potential
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_library::datacenter::data_center;

    #[test]
    fn solve_renders_report() {
        let out = solve(&data_center()).unwrap();
        assert!(out.contains("System steady-state availability"));
        assert!(out.contains("Data Center System"));
    }

    #[test]
    fn dot_renders_chain() {
        let out = dot(&data_center(), "Server Box/System Board").unwrap();
        assert!(out.contains("digraph"));
        assert!(out.contains("Ok"));
    }

    #[test]
    fn dot_unknown_block() {
        assert!(dot(&data_center(), "Ghost").is_err());
    }

    #[test]
    fn importance_ranks_all_blocks() {
        let out = importance(&data_center()).unwrap();
        assert!(out.contains("criticality"));
        // Every block path appears.
        assert_eq!(out.matches("Data Center System/").count(), 23);
    }

    #[test]
    fn modes_renders_attribution() {
        let out = modes(&data_center(), "Server Box/System Board").unwrap();
        assert!(out.contains("first-failure mode attribution"));
        assert!(out.contains('%'));
        assert!(modes(&data_center(), "Ghost").is_err());
    }
}
