//! `simulate` command: Monte-Carlo cross-check of the analytic result.

use std::fmt::Write as _;

use rascad_core::solve_spec;
use rascad_sim::system_sim::{simulate_system, SystemSimOptions};
use rascad_spec::SystemSpec;

use super::{num_arg, CliError};

/// Runs `simulate [horizon-hours [replications [seed]]]`.
pub fn simulate(spec: &SystemSpec, args: &[&str]) -> Result<String, CliError> {
    let horizon: f64 = num_arg(args, 0, 100_000.0, "horizon")?;
    let replications: usize = num_arg(args, 1, 16, "replication count")?;
    let seed: u64 = num_arg(args, 2, 0x5eed, "seed")?;

    let analytic = solve_spec(spec)?;
    let result = simulate_system(
        spec,
        &SystemSimOptions {
            horizon_hours: horizon,
            replications,
            seed,
            deterministic_repairs: false,
        },
    )?;
    let est = result.availability;

    let mut out = String::new();
    let _ = writeln!(out, "Monte-Carlo cross-check ({replications} x {horizon} h, seed {seed})");
    let _ = writeln!(out, "  analytic availability : {:.9}", analytic.system.availability);
    let _ = writeln!(
        out,
        "  simulated             : {:.9} ± {:.2e} (95% CI)",
        est.mean, est.ci_half_width
    );
    let covered = (analytic.system.availability - est.mean).abs() <= est.ci_half_width.max(1e-9);
    let _ = writeln!(out, "  analytic inside CI    : {}", if covered { "yes" } else { "no" });
    let _ = writeln!(out, "  outages in first run  : {}", result.example_log.outage_count());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_library::cluster::two_node_cluster;

    #[test]
    fn simulate_reports_ci() {
        let spec = two_node_cluster(Default::default());
        let out = simulate(&spec, &["20000", "8", "3"]).unwrap();
        assert!(out.contains("analytic availability"));
        assert!(out.contains("95% CI"));
    }

    #[test]
    fn bad_numbers_rejected() {
        let spec = two_node_cluster(Default::default());
        assert!(simulate(&spec, &["abc"]).is_err());
        assert!(simulate(&spec, &["100", "xyz"]).is_err());
    }
}
