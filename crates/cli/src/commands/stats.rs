//! `stats` — pipeline statistics for one specification.
//!
//! Runs the full parse → validate → generate → solve pipeline with a
//! stopwatch around each stage and reports structural statistics
//! (blocks per chain type, state counts) plus the solver diagnostics
//! aggregated by `rascad-obs` (GTH solves, LU fill, pivot magnitudes).

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rascad_core::generator::generate_block;
use rascad_core::solve_spec;
use rascad_obs::{Event, MetricsSummary, Sink};
use rascad_spec::{Block, Diagram, SystemSpec};

use super::CliError;

/// Keeps the final [`Event::Metrics`] of a drain so the command can
/// report solver diagnostics without a trace file.
struct CaptureSink(Arc<Mutex<Option<MetricsSummary>>>);

impl Sink for CaptureSink {
    fn event(&mut self, event: &Event) {
        if let Event::Metrics { counters, values } = event {
            if let Ok(mut slot) = self.0.lock() {
                *slot = Some((counters.clone(), values.clone()));
            }
        }
    }
}

/// Disables tracing again if `stats` was the one to enable it, even on
/// an early error return.
struct CaptureGuard {
    active: bool,
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if self.active {
            rascad_obs::uninstall();
        }
    }
}

const CHAIN_TYPE_LABELS: [&str; 5] = [
    "type 0 (no redundancy, N = K)",
    "type 1 (transparent recovery, transparent repair)",
    "type 2 (transparent recovery, nontransparent repair)",
    "type 3 (nontransparent recovery, transparent repair)",
    "type 4 (nontransparent recovery, nontransparent repair)",
];

/// Runs the pipeline on the spec at `path` and renders the statistics
/// report.
pub fn stats(path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })?;

    let t = Instant::now();
    let spec = if path.ends_with(".json") {
        SystemSpec::from_json(&text)?
    } else {
        SystemSpec::from_dsl(&text)?
    };
    let t_parse = t.elapsed();

    let t = Instant::now();
    spec.validate()?;
    let t_validate = t.elapsed();

    let t = Instant::now();
    let mut per_type = [0usize; 5];
    let mut total_states = 0usize;
    let mut total_transitions = 0usize;
    let mut largest: Option<(String, u8, usize)> = None;
    visit_blocks(&spec.root, "", &mut |block, block_path| {
        let model = generate_block(&block.params, &spec.globals)?;
        per_type[usize::from(model.model_type)] += 1;
        total_states += model.state_count();
        total_transitions += model.transition_count();
        if largest.as_ref().is_none_or(|&(_, _, s)| model.state_count() > s) {
            largest = Some((block_path, model.model_type, model.state_count()));
        }
        Ok(())
    })?;
    let t_generate = t.elapsed();

    // Collect solver diagnostics through the obs layer, unless the user
    // already routed them elsewhere with --trace/--timings. Installed
    // only now so the structural pass above doesn't double-count the
    // generation metrics: the solve stage runs one full generate+solve
    // pipeline, and that is what the diagnostics table reports.
    let captured: Arc<Mutex<Option<MetricsSummary>>> = Arc::new(Mutex::new(None));
    let own_subscriber = !rascad_obs::enabled();
    if own_subscriber {
        rascad_obs::install(vec![Box::new(CaptureSink(Arc::clone(&captured)))]);
    }
    let _guard = CaptureGuard { active: own_subscriber };

    let t = Instant::now();
    let sol = solve_spec(&spec)?;
    let t_solve = t.elapsed();

    if own_subscriber {
        rascad_obs::drain();
    }

    let mut out = String::new();
    let _ = writeln!(out, "pipeline statistics for \"{}\" ({path})", spec.root.name);
    let _ = writeln!(out);
    let _ = writeln!(out, "stage timings:");
    for (stage, d) in
        [("parse", t_parse), ("validate", t_validate), ("generate", t_generate), ("solve", t_solve)]
    {
        let _ = writeln!(out, "  {stage:<10} {}", fmt_stage(d));
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "blocks per chain type:");
    for (count, label) in per_type.iter().zip(CHAIN_TYPE_LABELS) {
        if *count > 0 {
            let _ = writeln!(out, "  {label:<56} {count:>4}");
        }
    }
    let blocks: usize = per_type.iter().sum();
    let _ = writeln!(
        out,
        "  total: {blocks} blocks, {total_states} states, {total_transitions} transitions"
    );
    if let Some((block_path, ty, states)) = largest {
        let _ = writeln!(out, "  largest chain: \"{block_path}\" (type {ty}, {states} states)");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "system availability {:.9} ({:.1} min/y downtime)",
        sol.system.availability, sol.system.yearly_downtime_minutes
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "solver diagnostics:");
    match captured.lock().ok().and_then(|mut slot| slot.take()) {
        Some((mut counters, values)) => {
            // The robustness counters always appear — zero-filled when
            // nothing fired — so operators can grep for them
            // unconditionally.
            for name in ["engine.worker_panics", "solve.fallbacks", "solve.timeouts"] {
                if !counters.iter().any(|(n, _)| *n == name) {
                    counters.push((name, 0));
                }
            }
            counters.sort_unstable_by_key(|(name, _)| *name);
            for (name, v) in &counters {
                let _ = writeln!(out, "  {name:<36} {v:>12}");
            }
            if !values.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:<36} {:>6} {:>10} {:>10} {:>10}",
                    "value", "count", "mean", "p50", "max"
                );
                for (name, s) in &values {
                    let _ = writeln!(
                        out,
                        "  {name:<36} {:>6} {:>10.4} {:>10.4} {:>10.4}",
                        s.count,
                        s.mean(),
                        s.p50,
                        s.max
                    );
                }
            }
        }
        None => {
            let _ = writeln!(out, "  (streamed to the sinks installed by --trace/--timings)");
        }
    }
    Ok(out)
}

/// Depth-first walk of every block in the hierarchy, passing its
/// slash-separated path.
fn visit_blocks(
    diagram: &Diagram,
    prefix: &str,
    f: &mut impl FnMut(&Block, String) -> Result<(), CliError>,
) -> Result<(), CliError> {
    for block in &diagram.blocks {
        let block_path = if prefix.is_empty() {
            block.params.name.clone()
        } else {
            format!("{prefix}/{}", block.params.name)
        };
        f(block, block_path.clone())?;
        if let Some(sub) = &block.subdiagram {
            visit_blocks(sub, &block_path, f)?;
        }
    }
    Ok(())
}

fn fmt_stage(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else {
        format!("{:.3} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_reports_stages_types_and_diagnostics() {
        let _lock = crate::commands::obs_test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join("rascad_stats_test.rascad");
        let spec = rascad_library::datacenter::data_center();
        std::fs::write(&path, spec.to_dsl()).unwrap();

        let out = stats(path.to_str().unwrap()).unwrap();
        assert!(out.contains("stage timings:"), "{out}");
        for stage in ["parse", "validate", "generate", "solve"] {
            assert!(out.contains(stage), "missing stage {stage}: {out}");
        }
        assert!(out.contains("blocks per chain type:"), "{out}");
        assert!(out.contains("type 0"), "{out}");
        assert!(out.contains("largest chain:"), "{out}");
        assert!(out.contains("system availability"), "{out}");
        assert!(out.contains("solver diagnostics:"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_missing_file_is_io_error() {
        let e = stats("/no/such/spec.rascad").unwrap_err();
        assert!(matches!(e, CliError::Io { .. }));
        assert_eq!(e.exit_code(), 5);
    }
}
