//! `stats` — pipeline statistics for one specification.
//!
//! Runs the full parse → validate → generate → solve pipeline with a
//! stopwatch around each stage and reports structural statistics
//! (blocks per chain type, state counts) plus the solver diagnostics
//! aggregated by `rascad-obs` (GTH solves, LU fill, pivot magnitudes).
//! With `--prometheus`, the solve-run metrics are rendered as a
//! Prometheus text-format (exposition 0.0.4) page instead — to a file
//! with `--out`, else to stdout.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rascad_core::generator::generate_block;
use rascad_core::solve_spec;
use rascad_obs::{Event, MetricKind, MetricsSummary, RegistrySnapshot, Sink, CATALOG};
use rascad_spec::{Block, Diagram, SystemSpec};

use super::CliError;

/// Keeps the final [`Event::Metrics`] of a drain so the command can
/// report solver diagnostics without a trace file.
struct CaptureSink(Arc<Mutex<Option<MetricsSummary>>>);

impl Sink for CaptureSink {
    fn event(&mut self, event: &Event) {
        if let Event::Metrics { counters, gauges, values } = event {
            if let Ok(mut slot) = self.0.lock() {
                *slot = Some(MetricsSummary {
                    counters: counters.clone(),
                    gauges: gauges.clone(),
                    values: values.clone(),
                });
            }
        }
    }
}

/// Disables tracing again if `stats` was the one to enable it, even on
/// an early error return.
struct CaptureGuard {
    active: bool,
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if self.active {
            rascad_obs::uninstall();
        }
    }
}

const CHAIN_TYPE_LABELS: [&str; 5] = [
    "type 0 (no redundancy, N = K)",
    "type 1 (transparent recovery, transparent repair)",
    "type 2 (transparent recovery, nontransparent repair)",
    "type 3 (nontransparent recovery, transparent repair)",
    "type 4 (nontransparent recovery, nontransparent repair)",
];

/// Parsed `stats` arguments.
struct StatsArgs<'a> {
    path: &'a str,
    prometheus: bool,
    out: Option<&'a str>,
}

fn parse_args<'a>(args: &[&'a str]) -> Result<StatsArgs<'a>, CliError> {
    let mut path = None;
    let mut prometheus = false;
    let mut out = None;
    let mut it = args.iter().copied();
    while let Some(a) = it.next() {
        match a {
            "--prometheus" => prometheus = true,
            "--out" => {
                out =
                    Some(it.next().ok_or_else(|| CliError::usage("--out needs a file argument"))?);
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::usage(format!("unknown stats flag `{flag}`")));
            }
            positional if path.is_none() => path = Some(positional),
            extra => {
                return Err(CliError::usage(format!("unexpected stats argument `{extra}`")));
            }
        }
    }
    let path = path.ok_or_else(|| CliError::usage("stats needs a spec file argument"))?;
    if out.is_some() && !prometheus {
        return Err(CliError::usage("stats --out requires --prometheus"));
    }
    Ok(StatsArgs { path, prometheus, out })
}

/// Runs the pipeline on the spec at `path` and renders the statistics
/// report (or a Prometheus exposition page under `--prometheus`).
pub fn stats(args: &[&str]) -> Result<String, CliError> {
    let args = parse_args(args)?;
    let path = args.path;
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })?;

    let t = Instant::now();
    let spec = if path.ends_with(".json") {
        SystemSpec::from_json(&text)?
    } else {
        SystemSpec::from_dsl(&text)?
    };
    let t_parse = t.elapsed();

    let t = Instant::now();
    spec.validate()?;
    let t_validate = t.elapsed();

    let t = Instant::now();
    let mut per_type = [0usize; 5];
    let mut total_states = 0usize;
    let mut total_transitions = 0usize;
    let mut largest: Option<(String, u8, usize)> = None;
    visit_blocks(&spec.root, "", &mut |block, block_path| {
        let model = generate_block(&block.params, &spec.globals)?;
        per_type[usize::from(model.model_type)] += 1;
        total_states += model.state_count();
        total_transitions += model.transition_count();
        if largest.as_ref().is_none_or(|&(_, _, s)| model.state_count() > s) {
            largest = Some((block_path, model.model_type, model.state_count()));
        }
        Ok(())
    })?;
    let t_generate = t.elapsed();

    // Collect solver diagnostics through the obs layer, unless the user
    // already routed them elsewhere with --trace/--timings. Installed
    // only now so the structural pass above doesn't double-count the
    // generation metrics: the solve stage runs one full generate+solve
    // pipeline, and that is what the diagnostics table reports.
    let captured: Arc<Mutex<Option<MetricsSummary>>> = Arc::new(Mutex::new(None));
    let own_subscriber = !rascad_obs::enabled();
    if own_subscriber {
        rascad_obs::install(vec![Box::new(CaptureSink(Arc::clone(&captured)))]);
    }
    let _guard = CaptureGuard { active: own_subscriber };

    let t = Instant::now();
    let sol = solve_spec(&spec)?;
    let t_solve = t.elapsed();

    // The Prometheus page is encoded from a registry scrape — labels
    // intact, histogram buckets included — taken before the drain
    // resets the shards.
    let scrape =
        if args.prometheus { Some(rascad_obs::MetricsRegistry::global().snapshot()) } else { None };

    if own_subscriber {
        rascad_obs::drain();
    }

    if let Some(snap) = scrape {
        return prometheus_report(&snap, args.out);
    }

    let mut out = String::new();
    let _ = writeln!(out, "pipeline statistics for \"{}\" ({path})", spec.root.name);
    let _ = writeln!(out);
    let _ = writeln!(out, "stage timings:");
    for (stage, d) in
        [("parse", t_parse), ("validate", t_validate), ("generate", t_generate), ("solve", t_solve)]
    {
        let _ = writeln!(out, "  {stage:<10} {}", fmt_stage(d));
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "blocks per chain type:");
    for (count, label) in per_type.iter().zip(CHAIN_TYPE_LABELS) {
        if *count > 0 {
            let _ = writeln!(out, "  {label:<56} {count:>4}");
        }
    }
    let blocks: usize = per_type.iter().sum();
    let _ = writeln!(
        out,
        "  total: {blocks} blocks, {total_states} states, {total_transitions} transitions"
    );
    if let Some((block_path, ty, states)) = largest {
        let _ = writeln!(out, "  largest chain: \"{block_path}\" (type {ty}, {states} states)");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "system availability {:.9} ({:.1} min/y downtime)",
        sol.system.availability, sol.system.yearly_downtime_minutes
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "solver diagnostics:");
    match captured.lock().ok().and_then(|mut slot| slot.take()) {
        Some(m) => {
            let mut counters = m.counters;
            // Every catalogued counter appears — zero-filled when
            // nothing fired — so operators can grep for any known
            // metric unconditionally. The catalog is the single source
            // of truth; a counter added there can never silently go
            // missing here.
            for desc in CATALOG {
                if desc.kind == MetricKind::Counter
                    && !counters.iter().any(|(n, _)| series_base(n) == desc.name)
                {
                    counters.push((desc.name.to_string(), 0));
                }
            }
            counters.sort();
            for (name, v) in &counters {
                let _ = writeln!(out, "  {name:<36} {v:>12}");
            }
            if !m.gauges.is_empty() {
                let _ = writeln!(out, "  {:<36} {:>12}", "gauge", "value");
                for (name, v) in &m.gauges {
                    let _ = writeln!(out, "  {name:<36} {v:>12}");
                }
            }
            if !m.values.is_empty() {
                let _ = writeln!(
                    out,
                    "  {:<36} {:>6} {:>10} {:>10} {:>10} {:>10}",
                    "value", "count", "min", "mean", "p50", "max"
                );
                for (name, s) in &m.values {
                    let _ = writeln!(
                        out,
                        "  {name:<36} {:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                        s.count,
                        s.min,
                        s.mean(),
                        s.p50,
                        s.max
                    );
                }
            }
        }
        None => {
            let _ = writeln!(out, "  (streamed to the sinks installed by --trace/--timings)");
        }
    }
    Ok(out)
}

/// Rendered series name without its label block:
/// `cache.hits{kind="steady"}` → `cache.hits`.
fn series_base(rendered: &str) -> &str {
    rendered.split('{').next().unwrap_or(rendered)
}

/// Encodes a registry scrape as an exposition page, self-checked by the
/// bundled validator, written to `out` or returned for stdout.
fn prometheus_report(snap: &RegistrySnapshot, out: Option<&str>) -> Result<String, CliError> {
    let page = rascad_obs::prometheus::encode(snap);
    if let Err(e) = rascad_obs::prometheus::validate(&page) {
        // Internal invariant, not a user error: the encoder must always
        // produce validator-clean output.
        return Err(CliError::usage(format!("internal: generated exposition is invalid: {e}")));
    }
    match out {
        Some(file) => {
            std::fs::write(file, &page)
                .map_err(|source| CliError::Io { path: file.to_string(), source })?;
            let samples = page.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
            Ok(format!("wrote {samples} samples to {file}\n"))
        }
        None => Ok(page),
    }
}

/// Depth-first walk of every block in the hierarchy, passing its
/// slash-separated path.
fn visit_blocks(
    diagram: &Diagram,
    prefix: &str,
    f: &mut impl FnMut(&Block, String) -> Result<(), CliError>,
) -> Result<(), CliError> {
    for block in &diagram.blocks {
        let block_path = if prefix.is_empty() {
            block.params.name.clone()
        } else {
            format!("{prefix}/{}", block.params.name)
        };
        f(block, block_path.clone())?;
        if let Some(sub) = &block.subdiagram {
            visit_blocks(sub, &block_path, f)?;
        }
    }
    Ok(())
}

fn fmt_stage(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else {
        format!("{:.3} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_spec(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, rascad_library::datacenter::data_center().to_dsl()).unwrap();
        path
    }

    #[test]
    fn stats_reports_stages_types_and_diagnostics() {
        let _lock = crate::commands::obs_test_lock();
        let path = write_spec("rascad_stats_test.rascad");

        let out = stats(&[path.to_str().unwrap()]).unwrap();
        assert!(out.contains("stage timings:"), "{out}");
        for stage in ["parse", "validate", "generate", "solve"] {
            assert!(out.contains(stage), "missing stage {stage}: {out}");
        }
        assert!(out.contains("blocks per chain type:"), "{out}");
        assert!(out.contains("type 0"), "{out}");
        assert!(out.contains("largest chain:"), "{out}");
        assert!(out.contains("system availability"), "{out}");
        assert!(out.contains("solver diagnostics:"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_zero_fills_every_catalogued_counter() {
        let _lock = crate::commands::obs_test_lock();
        let path = write_spec("rascad_stats_zero.rascad");
        let out = stats(&[path.to_str().unwrap()]).unwrap();
        // Robustness counters cannot fire on a healthy solve, yet they
        // appear (zero-filled from the catalog), as does every other
        // catalogued counter family.
        for name in ["engine.worker_panics", "solve.fallbacks", "solve.timeouts"] {
            assert!(out.contains(name), "missing zero-filled {name}: {out}");
        }
        for desc in CATALOG {
            if desc.kind == MetricKind::Counter {
                assert!(out.contains(desc.name), "catalog counter {} missing", desc.name);
            }
        }
        // Labeled series from the solve show up rendered. (Whether the
        // run hits or misses depends on how warm the process-wide
        // engine cache is, but one of the two must have fired.)
        assert!(
            out.contains("core.cache.hits{kind=\"") || out.contains("core.cache.misses{kind=\""),
            "{out}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_prometheus_emits_validator_clean_page() {
        let _lock = crate::commands::obs_test_lock();
        let path = write_spec("rascad_stats_prom.rascad");
        let page = stats(&[path.to_str().unwrap(), "--prometheus"]).unwrap();
        rascad_obs::prometheus::validate(&page).unwrap();
        assert!(page.contains("# TYPE rascad_core_specs_solved counter"), "{page}");
        assert!(page.contains("rascad_core_specs_solved 1"), "{page}");
        // Catalogued counters are zero-filled even when the warm
        // process-wide cache skipped the solver entirely.
        assert!(page.contains("# TYPE rascad_markov_solves counter"), "{page}");
        // Histograms are native: buckets, sum, count. Block generation
        // always runs, so its state-count histogram is always present.
        assert!(page.contains("rascad_core_block_states_bucket"), "{page}");
        assert!(page.contains("rascad_core_block_states_count 23"), "{page}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_prometheus_out_writes_file() {
        let _lock = crate::commands::obs_test_lock();
        let path = write_spec("rascad_stats_promout.rascad");
        let out_file = std::env::temp_dir().join("rascad_stats_m.prom");
        let msg =
            stats(&[path.to_str().unwrap(), "--prometheus", "--out", out_file.to_str().unwrap()])
                .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let page = std::fs::read_to_string(&out_file).unwrap();
        rascad_obs::prometheus::validate(&page).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&out_file).ok();
    }

    #[test]
    fn stats_flag_parsing_rejects_bad_usage() {
        assert!(stats(&[]).is_err());
        assert!(stats(&["--prometheus"]).is_err()); // no spec path
        let e = stats(&["spec.rascad", "--out", "x.prom"]).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e:?}");
        assert!(stats(&["a.rascad", "b.rascad"]).is_err());
        assert!(stats(&["a.rascad", "--frobnicate"]).is_err());
    }

    #[test]
    fn stats_missing_file_is_io_error() {
        let e = stats(&["/no/such/spec.rascad"]).unwrap_err();
        assert!(matches!(e, CliError::Io { .. }));
        assert_eq!(e.exit_code(), 5);
    }
}
