//! `bench` — deterministic benchmark suite with versioned
//! `BENCH_*.json` baselines and regression comparison.
//!
//! Runs the whole generate-and-solve pipeline as a fixed workload suite
//! (spec parse, MG generation for all five chain types, GTH/LU/power
//! stationary solves, transient and interval analysis, hierarchy
//! roll-up, parametric sweep, bounded simulation), captures per-stage
//! wall-clock plus the span/metric telemetry aggregated by
//! `rascad-obs`, and emits a machine-readable document that a later run
//! can be compared against (`--compare`). A comparison breaching the
//! failure threshold exits with code 6 so CI can gate on it.

use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rascad_bench::workloads::{self, BenchProfile};
use rascad_core::generator::generate_block;
use rascad_core::hierarchy::{interval_availability_exact, solve_spec};
use rascad_core::sweep::{lin_space, log_space, sweep};
use rascad_core::{certify_steady, certify_transient, CoreError, Engine, SolutionCertificate};
use rascad_markov::transient::{self, TransientOptions};
use rascad_markov::{Ctmc, MarkovError, SteadyStateMethod};
use rascad_obs::json::{self, Value};
use rascad_obs::{Event, MetricsSummary, Sink, SpanTreeAgg};
use rascad_sim::system_sim::{simulate_system, SystemSimOptions};
use rascad_spec::units::Hours;
use rascad_spec::SystemSpec;

use super::CliError;

/// Version tag of the emitted document; bump on breaking layout
/// changes so stale baselines are rejected instead of mis-compared.
const SCHEMA: &str = "rascad-bench/v1";

/// Accuracy gate: `--compare` fails (exit 6) when a stage's certified
/// residual grew by at least this factor over the baseline.
const ACCURACY_FAIL_RATIO: f64 = 10.0;

/// Residual growth at or past this factor (but under
/// [`ACCURACY_FAIL_RATIO`]) is reported as a warning.
const ACCURACY_WARN_RATIO: f64 = 3.0;

/// Default `--residual-floor`: a current residual at or below it always
/// passes the accuracy gate, so near-machine-precision residuals (which
/// legitimately wobble across architectures and libm versions) cannot
/// flake a cross-machine comparison.
const DEFAULT_RESIDUAL_FLOOR: f64 = 1e-13;

/// Parsed `bench` options.
struct BenchArgs {
    profile: BenchProfile,
    label: String,
    out: Option<String>,
    json: bool,
    compare: Option<String>,
    warn_ratio: f64,
    fail_ratio: f64,
    floor_us: f64,
    residual_floor: f64,
    sweep: bool,
    large: bool,
    serve: bool,
}

/// Runs `bench [--quick|--full] [--sweep|--large] [--label L] [--out F]
/// [--json] [--compare BASE] [--warn-ratio R] [--fail-ratio R]
/// [--floor-us US]` or `bench --validate <file>`.
pub fn bench(args: &[&str]) -> Result<String, CliError> {
    if let Some(i) = args.iter().position(|a| *a == "--validate") {
        if args.len() != 2 || i != 0 {
            return Err(CliError::usage("usage: rascad bench --validate <bench.json>"));
        }
        return validate_file(args[1]);
    }
    run_suite(&parse_args(args)?)
}

fn parse_args(args: &[&str]) -> Result<BenchArgs, CliError> {
    let mut parsed = BenchArgs {
        profile: BenchProfile::quick(),
        label: String::new(),
        out: None,
        json: false,
        compare: None,
        warn_ratio: 1.25,
        fail_ratio: 2.0,
        floor_us: 50.0,
        residual_floor: DEFAULT_RESIDUAL_FLOOR,
        sweep: false,
        large: false,
        serve: false,
    };
    let mut it = args.iter().copied();
    while let Some(arg) = it.next() {
        match arg {
            "--quick" => parsed.profile = BenchProfile::quick(),
            "--full" => parsed.profile = BenchProfile::full(),
            "--sweep" => parsed.sweep = true,
            "--large" => parsed.large = true,
            "--serve" => parsed.serve = true,
            "--json" => parsed.json = true,
            "--label" => parsed.label = flag_value(&mut it, "--label")?.to_string(),
            "--out" => parsed.out = Some(flag_value(&mut it, "--out")?.to_string()),
            "--compare" => parsed.compare = Some(flag_value(&mut it, "--compare")?.to_string()),
            "--warn-ratio" => parsed.warn_ratio = flag_num(&mut it, "--warn-ratio")?,
            "--fail-ratio" => parsed.fail_ratio = flag_num(&mut it, "--fail-ratio")?,
            "--floor-us" => parsed.floor_us = flag_num(&mut it, "--floor-us")?,
            "--residual-floor" => parsed.residual_floor = flag_num(&mut it, "--residual-floor")?,
            other => {
                return Err(CliError::usage(format!("unknown bench option `{other}`")));
            }
        }
    }
    if usize::from(parsed.sweep) + usize::from(parsed.large) + usize::from(parsed.serve) > 1 {
        return Err(CliError::usage(
            "--sweep, --large, and --serve are separate workloads; pick one",
        ));
    }
    if parsed.label.is_empty() {
        // The workload-specific suites default to their committed
        // baseline names so `bench --sweep` / `bench --large` /
        // `bench --serve` write BENCH_<workload>.json out of the box.
        parsed.label = if parsed.sweep {
            "sweep".to_string()
        } else if parsed.large {
            "large".to_string()
        } else if parsed.serve {
            "serve".to_string()
        } else {
            "local".to_string()
        };
    }
    if !parsed.label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
        return Err(CliError::usage(format!(
            "bench label `{}` must be non-empty [A-Za-z0-9_-]",
            parsed.label
        )));
    }
    let ratios_ok = parsed.warn_ratio >= 1.0 && parsed.fail_ratio >= parsed.warn_ratio;
    if !ratios_ok {
        return Err(CliError::usage(format!(
            "need 1 <= warn-ratio <= fail-ratio, got {} and {}",
            parsed.warn_ratio, parsed.fail_ratio
        )));
    }
    if parsed.floor_us.is_nan() || parsed.floor_us < 0.0 {
        return Err(CliError::usage(format!("floor-us {} must be >= 0", parsed.floor_us)));
    }
    if parsed.residual_floor.is_nan() || parsed.residual_floor < 0.0 {
        return Err(CliError::usage(format!(
            "residual-floor {} must be >= 0",
            parsed.residual_floor
        )));
    }
    Ok(parsed)
}

fn flag_value<'a>(it: &mut impl Iterator<Item = &'a str>, flag: &str) -> Result<&'a str, CliError> {
    it.next().ok_or_else(|| CliError::usage(format!("{flag} needs an argument")))
}

fn flag_num<'a>(it: &mut impl Iterator<Item = &'a str>, flag: &str) -> Result<f64, CliError> {
    let s = flag_value(it, flag)?;
    s.parse().map_err(|_| CliError::usage(format!("bad {flag} value: `{s}`")))
}

// ---------------------------------------------------------------------------
// Suite execution
// ---------------------------------------------------------------------------

/// Wall-clock summary of one benchmark stage.
struct StageResult {
    name: &'static str,
    runs: usize,
    min_us: f64,
    mean_us: f64,
    max_us: f64,
    /// Accuracy certificate of the solves this stage runs, when it
    /// solves anything (timing-only stages carry `None`).
    cert: Option<StageCert>,
}

/// The worst certificate (highest verdict, then highest residual)
/// among a stage's solves — what the baseline pins and the accuracy
/// gate compares.
#[derive(Clone)]
struct StageCert {
    method: String,
    verdict: &'static str,
    residual: f64,
    prob_mass_error: f64,
}

/// Reduces a stage's certificates to the worst one. `Verdict` orders
/// ok < warn < fail and `total_cmp` ranks NaN above every number, so a
/// poisoned residual can never hide behind a clean sibling.
fn worst_certificate(certs: impl IntoIterator<Item = SolutionCertificate>) -> Option<StageCert> {
    certs
        .into_iter()
        .max_by(|a, b| a.verdict.cmp(&b.verdict).then(a.residual_inf.total_cmp(&b.residual_inf)))
        .map(|c| StageCert {
            method: c.method,
            verdict: c.verdict.as_str(),
            residual: c.residual_inf,
            prob_mass_error: c.prob_mass_error,
        })
}

/// Numerical spot checks recorded alongside the timings so a baseline
/// also pins the *answers*, not just the speed.
struct Checks {
    availability: f64,
    yearly_downtime_minutes: f64,
    sim_availability: f64,
}

/// Forwards span events into a [`SpanTreeAgg`] and keeps the final
/// drain-time metrics summary.
struct BenchCapture {
    tree: Arc<Mutex<SpanTreeAgg>>,
    metrics: Arc<Mutex<Option<MetricsSummary>>>,
}

impl Sink for BenchCapture {
    fn event(&mut self, event: &Event) {
        if let Event::Metrics { counters, gauges, values } = event {
            if let Ok(mut slot) = self.metrics.lock() {
                *slot = Some(MetricsSummary {
                    counters: counters.clone(),
                    gauges: gauges.clone(),
                    values: values.clone(),
                });
            }
        } else if let Ok(mut tree) = self.tree.lock() {
            tree.observe(event);
        }
    }
}

/// Disables tracing again if `bench` was the one to enable it, even on
/// an early error return.
struct CaptureGuard {
    active: bool,
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if self.active {
            rascad_obs::uninstall();
        }
    }
}

/// Times `iterations` runs of `work` after one untimed warm-up run.
fn time_stage<T>(
    name: &'static str,
    iterations: usize,
    mut work: impl FnMut() -> Result<T, CliError>,
) -> Result<StageResult, CliError> {
    black_box(work()?);
    let runs = iterations.max(1);
    let mut min_us = f64::INFINITY;
    let mut max_us: f64 = 0.0;
    let mut sum_us = 0.0;
    for _ in 0..runs {
        let t = Instant::now();
        black_box(work()?);
        let us = t.elapsed().as_secs_f64() * 1e6;
        min_us = min_us.min(us);
        max_us = max_us.max(us);
        sum_us += us;
    }
    #[allow(clippy::cast_precision_loss)] // benchmark run counts stay far below 2^52
    let mean_us = sum_us / runs as f64;
    Ok(StageResult { name, runs, min_us, mean_us, max_us, cert: None })
}

/// Certifies one untimed solve of every chain with the given method —
/// the certificate a solve stage attaches to its timings.
fn steady_stage_cert(
    chains: &[Ctmc],
    method: SteadyStateMethod,
    name: &'static str,
) -> Result<Option<StageCert>, CliError> {
    let mut certs = Vec::with_capacity(chains.len());
    for chain in chains {
        let pi = chain.steady_state(method).map_err(markov_err(name))?;
        certs.push(certify_steady(chain, &pi, name, Vec::new()));
    }
    Ok(worst_certificate(certs))
}

fn markov_err(stage: &'static str) -> impl Fn(MarkovError) -> CliError {
    move |source| CliError::Solver(CoreError::Markov { block: stage.to_string(), source })
}

fn run_stages(profile: &BenchProfile) -> Result<(Vec<StageResult>, Checks), CliError> {
    let globals = rascad_bench::globals();
    let blocks = workloads::chain_type_blocks();
    let hierarchy = workloads::hierarchy_spec();
    let sweep_base = workloads::sweep_spec();
    let power = workloads::power_chain();
    let reps = profile.iterations;

    let mut stages = Vec::new();

    stages.push(time_stage("parse_dsl", reps, || {
        for _ in 0..16 {
            black_box(SystemSpec::from_dsl(workloads::HIERARCHY_DSL).map_err(CliError::Spec)?);
        }
        Ok(())
    })?);

    for (ty, params) in &blocks {
        let name = generate_stage_name(*ty);
        stages.push(time_stage(name, reps, || {
            for _ in 0..8 {
                black_box(generate_block(params, &globals)?);
            }
            Ok(())
        })?);
    }

    let chains: Vec<Ctmc> = blocks
        .iter()
        .map(|(_, p)| generate_block(p, &globals).map(|m| m.chain))
        .collect::<Result<_, _>>()?;

    let mut stage = time_stage("solve_gth", reps, || {
        for chain in &chains {
            black_box(chain.steady_state(SteadyStateMethod::Gth).map_err(markov_err("gth"))?);
        }
        Ok(())
    })?;
    stage.cert = steady_stage_cert(&chains, SteadyStateMethod::Gth, "gth")?;
    stages.push(stage);

    let mut stage = time_stage("solve_lu", reps, || {
        for chain in &chains {
            black_box(chain.steady_state(SteadyStateMethod::Lu).map_err(markov_err("lu"))?);
        }
        Ok(())
    })?;
    stage.cert = steady_stage_cert(&chains, SteadyStateMethod::Lu, "lu")?;
    stages.push(stage);

    let mut stage = time_stage("solve_power", reps, || {
        black_box(power.steady_state(SteadyStateMethod::Power).map_err(markov_err("power"))?);
        Ok(())
    })?;
    stage.cert =
        steady_stage_cert(std::slice::from_ref(&power), SteadyStateMethod::Power, "power")?;
    stages.push(stage);

    // Type 3 is the paper's diagrammed template; start in the
    // everything-working state.
    let transient_chain = &chains[3];
    let mut p0 = vec![0.0; transient_chain.len()];
    p0[0] = 1.0;
    let mut stage = time_stage("transient", reps, || {
        black_box(
            transient::solve(
                transient_chain,
                &p0,
                profile.transient_hours,
                TransientOptions::default(),
            )
            .map_err(markov_err("transient"))?,
        );
        Ok(())
    })?;
    let tsol = transient::solve(
        transient_chain,
        &p0,
        profile.transient_hours,
        TransientOptions::default(),
    )
    .map_err(markov_err("transient"))?;
    stage.cert = worst_certificate([certify_transient(&tsol)]);
    stages.push(stage);

    stages.push(time_stage("interval_exact", reps, || {
        black_box(interval_availability_exact(
            &hierarchy,
            profile.interval_horizon_hours,
            profile.interval_grid_points,
        )?);
        Ok(())
    })?);

    let mut availability = f64::NAN;
    let mut yearly_downtime_minutes = f64::NAN;
    let mut hier_certs: Vec<SolutionCertificate> = Vec::new();
    let mut stage = time_stage("hierarchy", reps, || {
        let solution = solve_spec(&hierarchy)?;
        availability = solution.system.availability;
        yearly_downtime_minutes = solution.system.yearly_downtime_minutes;
        hier_certs = solution.blocks.iter().map(|b| b.certificate.clone()).collect();
        black_box(solution);
        Ok(())
    })?;
    stage.cert = worst_certificate(hier_certs);
    stages.push(stage);

    let sweep_values = log_space(1.0, 8.0, profile.sweep_points)?;
    let sweep_apply = |spec: &mut SystemSpec, v: f64| {
        if let Some(block) = spec.root.find_mut(workloads::SWEEP_BLOCK) {
            block.params.service_response = Hours(v);
        }
    };
    let mut stage = time_stage("sweep", reps, || {
        black_box(sweep(&sweep_base, &sweep_values, sweep_apply)?);
        Ok(())
    })?;
    let points = sweep(&sweep_base, &sweep_values, sweep_apply)?;
    stage.cert = worst_certificate(
        points.iter().flat_map(|p| p.solution.blocks.iter().map(|b| b.certificate.clone())),
    );
    stages.push(stage);

    let mut sim_availability = f64::NAN;
    stages.push(time_stage("simulate", reps, || {
        let result = simulate_system(
            &hierarchy,
            &SystemSimOptions {
                horizon_hours: profile.sim_horizon_hours,
                replications: profile.sim_replications,
                seed: 0xbead,
                deterministic_repairs: false,
            },
        )?;
        sim_availability = result.availability.mean;
        black_box(result);
        Ok(())
    })?);

    Ok((stages, Checks { availability, yearly_downtime_minutes, sim_availability }))
}

fn generate_stage_name(ty: u8) -> &'static str {
    match ty {
        0 => "generate_type0",
        1 => "generate_type1",
        2 => "generate_type2",
        3 => "generate_type3",
        _ => "generate_type4",
    }
}

// ---------------------------------------------------------------------------
// Sweep-scaling workload (`--sweep`)
// ---------------------------------------------------------------------------

/// Contender thread count for the sweep-scaling workload.
const SWEEP_THREADS: usize = 4;

/// Results of the sweep-scaling workload: the pre-engine behavior
/// (sequential, cache-free) against the solve engine at one and
/// [`SWEEP_THREADS`] workers, plus the cache statistics of one
/// instrumented run and a bit-identity verdict against the reference.
struct SweepScaling {
    points: usize,
    blocks: usize,
    threads: usize,
    baseline_us: f64,
    engine_t1_us: f64,
    engine_tn_us: f64,
    /// `baseline_us / engine_tn_us`: what the engine buys end to end.
    speedup_vs_baseline: f64,
    /// `engine_t1_us / engine_tn_us`: thread scaling alone, which stays
    /// near 1.0 on single-core machines where the gain is all cache.
    thread_scaling: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    bit_identical: bool,
    availability: f64,
    yearly_downtime_minutes: f64,
}

/// Times the sweep-scaling workload. Every timed run builds a fresh
/// engine so its cache starts cold; the hits measured are the ones a
/// single sweep earns for itself by reusing unchanged blocks across
/// points.
fn run_sweep_stages(profile: &BenchProfile) -> Result<(Vec<StageResult>, SweepScaling), CliError> {
    let base = workloads::sweep_scaling_spec();
    let blocks = base.root.blocks.len();
    let points = workloads::SWEEP_SCALING_POINTS;
    let values = lin_space(0.5, 48.0, points)?;
    let apply = |spec: &mut SystemSpec, v: f64| {
        if let Some(block) = spec.root.find_mut(workloads::SWEEP_SCALING_BLOCK) {
            block.params.service_response = Hours(v);
        }
    };
    let reps = profile.iterations;

    let mut stages = Vec::new();
    stages.push(time_stage("sweep_baseline_seq", reps, || {
        black_box(Engine::sequential().sweep(&base, &values, apply)?);
        Ok(())
    })?);
    stages.push(time_stage("sweep_engine_t1", reps, || {
        black_box(Engine::with_threads(1).sweep(&base, &values, apply)?);
        Ok(())
    })?);
    stages.push(time_stage("sweep_engine_tn", reps, || {
        black_box(Engine::with_threads(SWEEP_THREADS).sweep(&base, &values, apply)?);
        Ok(())
    })?);

    // One instrumented run for the cache statistics and the
    // bit-identity check against the sequential reference.
    let reference = Engine::sequential().sweep(&base, &values, apply)?;
    // All three stages time the same workload, so they share the
    // reference run's worst block certificate.
    let cert = worst_certificate(
        reference.iter().flat_map(|p| p.solution.blocks.iter().map(|b| b.certificate.clone())),
    );
    for stage in &mut stages {
        stage.cert = cert.clone();
    }
    let engine = Engine::with_threads(SWEEP_THREADS);
    let contender = engine.sweep(&base, &values, apply)?;
    let stats = engine.cache_stats();
    let bit_identical = reference.len() == contender.len()
        && reference.iter().zip(&contender).all(|(r, c)| {
            r.value.to_bits() == c.value.to_bits()
                && r.solution.system.availability.to_bits()
                    == c.solution.system.availability.to_bits()
                && r.solution.system.yearly_downtime_minutes.to_bits()
                    == c.solution.system.yearly_downtime_minutes.to_bits()
                && r.solution == c.solution
        });

    let baseline_us = stages[0].min_us;
    let engine_t1_us = stages[1].min_us;
    let engine_tn_us = stages[2].min_us;
    let first = &reference[0].solution.system;
    let scaling = SweepScaling {
        points,
        blocks,
        threads: SWEEP_THREADS,
        baseline_us,
        engine_t1_us,
        engine_tn_us,
        speedup_vs_baseline: baseline_us / engine_tn_us.max(1e-9),
        thread_scaling: engine_t1_us / engine_tn_us.max(1e-9),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_hit_rate: stats.hit_rate(),
        bit_identical,
        availability: first.availability,
        yearly_downtime_minutes: first.yearly_downtime_minutes,
    };
    Ok((stages, scaling))
}

fn sweep_scaling_json(s: &SweepScaling) -> Value {
    Value::Obj(vec![
        ("points".to_string(), Value::from(s.points)),
        ("blocks".to_string(), Value::from(s.blocks)),
        ("threads".to_string(), Value::from(s.threads)),
        ("baseline_us".to_string(), Value::Num(s.baseline_us)),
        ("engine_t1_us".to_string(), Value::Num(s.engine_t1_us)),
        ("engine_tn_us".to_string(), Value::Num(s.engine_tn_us)),
        ("speedup_vs_baseline".to_string(), Value::Num(s.speedup_vs_baseline)),
        ("thread_scaling".to_string(), Value::Num(s.thread_scaling)),
        ("cache_hits".to_string(), Value::from(s.cache_hits as usize)),
        ("cache_misses".to_string(), Value::from(s.cache_misses as usize)),
        ("cache_hit_rate".to_string(), Value::Num(s.cache_hit_rate)),
        ("bit_identical".to_string(), Value::from(s.bit_identical)),
    ])
}

// ---------------------------------------------------------------------------
// Large-state-space workload (`--large`)
// ---------------------------------------------------------------------------

/// Results of the large-state-space workload: the sparse iterative
/// rung on a 10^4–10^5-state birth–death chain, the generator's
/// occupancy expansion of a thousand-unit k-out-of-n block, and a
/// brute-force proof that exact lumping preserves the stationary
/// vector on a `2^8`-state product space.
struct LargeScaling {
    sparse_states: usize,
    sparse_solve_us: f64,
    /// Repeated sparse solves of the same chain agree bit for bit
    /// (the sweep order is fixed, so they must).
    bit_identical: bool,
    block_units: u32,
    block_states: usize,
    block_solve_us: f64,
    block_availability: f64,
    lump_proof_units: u32,
    lump_full_states: usize,
    lump_states: usize,
    /// Worst classwise difference between the aggregated product-space
    /// stationary vector and the lumped chain's.
    lump_max_delta: f64,
}

fn run_large_stages(profile: &BenchProfile) -> Result<(Vec<StageResult>, LargeScaling), CliError> {
    use rascad_markov::{identical_units_product, lump, occupancy_partition};

    let reps = profile.iterations;
    let mut stages = Vec::new();

    // The headline chain: big enough that the core ladder routes it to
    // the sparse rung on state count alone.
    let chain = workloads::large_birth_death(profile.large_sparse_states);
    let method = rascad_core::select_method(chain.len(), SteadyStateMethod::Gth);
    let mut stage = time_stage("large_sparse", reps, || {
        black_box(chain.steady_state(method).map_err(markov_err("large_sparse"))?);
        Ok(())
    })?;
    stage.cert = steady_stage_cert(std::slice::from_ref(&chain), method, "sparse")?;
    let sparse_solve_us = stage.min_us;
    stages.push(stage);

    let first = chain.steady_state(method).map_err(markov_err("large_sparse"))?;
    let second = chain.steady_state(method).map_err(markov_err("large_sparse"))?;
    let bit_identical = first.len() == second.len()
        && first.iter().zip(&second).all(|(a, b)| a.to_bits() == b.to_bits());

    // The generator's birth–death template: a thousand-unit block is
    // 2^1000 product states on paper, N + 1 occupancy states in the
    // emitted chain.
    let globals = rascad_bench::globals();
    let params = workloads::large_block();
    stages.push(time_stage("large_block_generate", reps, || {
        black_box(generate_block(&params, &globals)?);
        Ok(())
    })?);
    let model = generate_block(&params, &globals)?;
    let block_method = rascad_core::select_method(model.chain.len(), SteadyStateMethod::Gth);
    let mut stage = time_stage("large_block_solve", reps, || {
        black_box(model.chain.steady_state(block_method).map_err(markov_err("large_block_solve"))?);
        Ok(())
    })?;
    stage.cert = steady_stage_cert(std::slice::from_ref(&model.chain), block_method, "sparse")?;
    let block_solve_us = stage.min_us;
    stages.push(stage);
    let pi = model.chain.steady_state(block_method).map_err(markov_err("large_block_solve"))?;
    let block_availability: f64 =
        model.chain.states().iter().zip(&pi).map(|(s, p)| s.reward * p).sum();

    // Brute-force lump proof: the full 2^8 product space against its
    // 9-state occupancy lump.
    let (lam, mu) = (1.0 / 20_000.0, 1.0 / 5.0);
    let units = workloads::LUMP_PROOF_UNITS;
    let full = identical_units_product(units, workloads::LUMP_PROOF_MIN, lam, mu)
        .map_err(markov_err("lump_proof"))?;
    let partition = occupancy_partition(units).map_err(markov_err("lump_proof"))?;
    stages.push(time_stage("lump_proof", reps, || {
        let small = lump(&full, &partition).map_err(markov_err("lump_proof"))?;
        black_box(small.steady_state(SteadyStateMethod::Gth).map_err(markov_err("lump_proof"))?);
        Ok(())
    })?);
    let small = lump(&full, &partition).map_err(markov_err("lump_proof"))?;
    let pi_full = full.steady_state(SteadyStateMethod::Gth).map_err(markov_err("lump_proof"))?;
    let pi_small = small.steady_state(SteadyStateMethod::Gth).map_err(markov_err("lump_proof"))?;
    let lump_max_delta = partition
        .aggregate(&pi_full)
        .iter()
        .zip(&pi_small)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    let scaling = LargeScaling {
        sparse_states: chain.len(),
        sparse_solve_us,
        bit_identical,
        block_units: workloads::LARGE_BLOCK_UNITS,
        block_states: model.chain.len(),
        block_solve_us,
        block_availability,
        lump_proof_units: units,
        lump_full_states: full.len(),
        lump_states: small.len(),
        lump_max_delta,
    };
    Ok((stages, scaling))
}

fn large_scaling_json(s: &LargeScaling) -> Value {
    Value::Obj(vec![
        ("sparse_states".to_string(), Value::from(s.sparse_states)),
        ("sparse_solve_us".to_string(), Value::Num(s.sparse_solve_us)),
        ("bit_identical".to_string(), Value::from(s.bit_identical)),
        ("block_units".to_string(), Value::from(s.block_units as usize)),
        ("block_states".to_string(), Value::from(s.block_states)),
        ("block_solve_us".to_string(), Value::Num(s.block_solve_us)),
        ("block_availability".to_string(), Value::Num(s.block_availability)),
        ("lump_proof_units".to_string(), Value::from(s.lump_proof_units as usize)),
        ("lump_full_states".to_string(), Value::from(s.lump_full_states)),
        ("lump_states".to_string(), Value::from(s.lump_states)),
        ("lump_max_delta".to_string(), Value::Num(s.lump_max_delta)),
    ])
}

// ---------------------------------------------------------------------------
// Service load workload (`--serve`)
// ---------------------------------------------------------------------------

/// Results of the service load workload: an in-process daemon driven
/// over real sockets — a >= 1000-solve throughput phase with a latency
/// histogram, a capacity-saturating burst that must shed, a 50 ms
/// deadline probe on a 10^5-state chain that must abort typed, and a
/// graceful drain.
struct ServeLoad {
    /// Successful (200) solves in the throughput phase.
    solves: usize,
    /// Every request the server answered across all phases.
    requests: u64,
    /// 429 responses observed during the burst phase.
    shed: u64,
    /// Shed fraction of the burst-phase attempts.
    shed_rate: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    /// Round-trip of the 50 ms-deadline probe on the big chain.
    deadline_probe_ms: f64,
    /// The probe answered 504 with the typed `deadline` error kind.
    deadline_typed: bool,
    /// `/metrics` passed the Prometheus exposition validator.
    metrics_page_valid: bool,
    /// Two identical solve requests returned byte-identical bodies.
    bit_identical: bool,
    /// The shutdown drain finished inside the timeout.
    drained_clean: bool,
    /// System availability parsed back out of a solve response.
    availability: f64,
}

/// One blocking HTTP exchange against the in-process daemon.
fn serve_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), CliError> {
    use std::io::{Read as _, Write as _};
    let err = |e: std::io::Error| CliError::Serve(format!("bench client: {e}"));
    let mut stream = std::net::TcpStream::connect(addr).map_err(err)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(60))).map_err(err)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(err)?;
    stream.write_all(body.as_bytes()).map_err(err)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(err)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| CliError::Serve("bench client: truncated response".to_string()))?;
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CliError::Serve(format!("bench client: bad status line `{head}`")))?;
    Ok((status, body.to_string()))
}

/// JSON-string-escapes a DSL payload for embedding in a request body.
fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// The throughput-phase spec: small, so the warm cross-request solve
/// cache is what the phase measures.
fn serve_small_spec() -> String {
    use rascad_spec::{BlockParams, Diagram, GlobalParams};
    let mut root = Diagram::new("BenchServe");
    root.push(BlockParams::new("A", 2, 1).with_mtbf(Hours(10_000.0)));
    root.push(BlockParams::new("B", 1, 1).with_mtbf(Hours(50_000.0)));
    SystemSpec::new(root, GlobalParams::default()).to_dsl()
}

/// The deadline-probe spec: a redundant 100 000-unit block expands
/// birth–death style to a ~10^5-state chain, far beyond a 50 ms budget.
fn serve_big_spec() -> String {
    use rascad_spec::{BlockParams, Diagram, GlobalParams};
    let mut root = Diagram::new("BenchServeBig");
    root.push(BlockParams::new("A", 100_000, 1).with_mtbf(Hours(10_000.0)));
    SystemSpec::new(root, GlobalParams::default()).to_dsl()
}

/// Latency percentile over an unsorted sample, nearest-rank.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[allow(clippy::cast_precision_loss)] // request counts stay far below 2^52
#[allow(clippy::too_many_lines)]
fn run_serve_stages(profile: &BenchProfile) -> Result<(Vec<StageResult>, ServeLoad), CliError> {
    use rascad_serve::{AdmissionConfig, ServeConfig, Server};

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        admission: AdmissionConfig { max_inflight: 8, max_per_tenant: 4, retry_after_secs: 1 },
        ..ServeConfig::default()
    })
    .map_err(|e| CliError::Serve(format!("bench cannot bind: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Serve(format!("bench cannot read bound address: {e}")))?;
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());

    let small = json_escape(&serve_small_spec());
    let big = json_escape(&serve_big_spec());
    let mut stages = Vec::new();

    // Throughput phase: four tenants, each storing the spec once and
    // then solving it by name until the pooled target is reached. All
    // requests go over real sockets, one connection per request.
    const CLIENTS: usize = 4;
    let target_solves = 500 * profile.iterations.max(2);
    let per_client = target_solves.div_ceil(CLIENTS);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(per_client * CLIENTS);
    let mut solves = 0usize;
    std::thread::scope(|scope| -> Result<(), CliError> {
        let mut workers = Vec::new();
        for client in 0..CLIENTS {
            let small = &small;
            workers.push(scope.spawn(move || -> Result<Vec<f64>, CliError> {
                let tenant = format!("bench-{client}");
                let put = format!(r#"{{"tenant":"{tenant}","name":"wl","spec":"{small}"}}"#);
                let (status, body) = serve_request(addr, "POST", "/v1/specs", &put)?;
                if status != 201 {
                    return Err(CliError::Serve(format!("spec store answered {status}: {body}")));
                }
                let solve = format!(r#"{{"tenant":"{tenant}","spec_name":"wl"}}"#);
                let mut lat = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    let (status, body) = serve_request(addr, "POST", "/v1/solve", &solve)?;
                    if status != 200 {
                        return Err(CliError::Serve(format!("solve answered {status}: {body}")));
                    }
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                }
                Ok(lat)
            }));
        }
        for w in workers {
            let lat = w
                .join()
                .map_err(|_| CliError::Serve("bench client thread panicked".to_string()))??;
            solves += lat.len();
            latencies_ms.extend(lat);
        }
        Ok(())
    })?;
    latencies_ms.sort_by(f64::total_cmp);
    let sum_ms: f64 = latencies_ms.iter().sum();
    stages.push(StageResult {
        name: "serve_solve",
        runs: solves,
        min_us: latencies_ms.first().copied().unwrap_or(f64::NAN) * 1e3,
        mean_us: sum_ms / solves.max(1) as f64 * 1e3,
        max_us: latencies_ms.last().copied().unwrap_or(f64::NAN) * 1e3,
        cert: None,
    });

    // Availability spot check + response bit-identity, on the warm cache.
    let solve_body = r#"{"tenant":"bench-0","spec_name":"wl"}"#.to_string();
    let (s1, b1) = serve_request(addr, "POST", "/v1/solve", &solve_body)?;
    let (s2, b2) = serve_request(addr, "POST", "/v1/solve", &solve_body)?;
    let bit_identical = s1 == 200 && s2 == 200 && b1 == b2;
    let availability = json::parse(&b1)
        .ok()
        .and_then(|v| v.get("system")?.get("availability")?.as_f64())
        .unwrap_or(f64::NAN);

    // Burst phase: fill the whole admission capacity with deadline-
    // bounded big-chain solves (they hold their slots for ~1.5 s), then
    // hammer the gate — every burst attempt while saturated must shed.
    let mut shed = 0u64;
    let mut burst_attempts = 0u64;
    let mut burst_latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| -> Result<(), CliError> {
        let mut holders = Vec::new();
        for h in 0..8 {
            let big = &big;
            holders.push(scope.spawn(move || {
                let tenant = format!("holder-{}", h % 2);
                let body = format!(r#"{{"tenant":"{tenant}","spec":"{big}","deadline_ms":1500}}"#);
                serve_request(addr, "POST", "/v1/solve", &body)
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        let probe = format!(r#"{{"tenant":"burst","spec":"{small}"}}"#);
        for _ in 0..40 {
            let t = Instant::now();
            let (status, _body) = serve_request(addr, "POST", "/v1/solve", &probe)?;
            burst_latencies.push(t.elapsed().as_secs_f64() * 1e3);
            burst_attempts += 1;
            if status == 429 {
                shed += 1;
            }
        }
        for h in holders {
            // Holders end typed (504 deadline after ~1.5 s, or 200 if
            // this machine somehow solved 10^5 states in time).
            let _ = h
                .join()
                .map_err(|_| CliError::Serve("bench holder thread panicked".to_string()))??;
        }
        Ok(())
    })?;
    let shed_rate = shed as f64 / burst_attempts.max(1) as f64;
    burst_latencies.sort_by(f64::total_cmp);
    let burst_sum: f64 = burst_latencies.iter().sum();
    stages.push(StageResult {
        name: "serve_shed_burst",
        runs: burst_latencies.len(),
        min_us: burst_latencies.first().copied().unwrap_or(f64::NAN) * 1e3,
        mean_us: burst_sum / burst_latencies.len().max(1) as f64 * 1e3,
        max_us: burst_latencies.last().copied().unwrap_or(f64::NAN) * 1e3,
        cert: None,
    });

    // Deadline probe: the big chain under a 50 ms budget must abort
    // with the typed deadline family, promptly.
    let probe_body = format!(r#"{{"spec":"{big}","deadline_ms":50}}"#);
    let t = Instant::now();
    let (probe_status, probe_text) = serve_request(addr, "POST", "/v1/solve", &probe_body)?;
    let deadline_probe_ms = t.elapsed().as_secs_f64() * 1e3;
    let deadline_typed = probe_status == 504
        && json::parse(&probe_text)
            .ok()
            .and_then(|v| Some(v.get("error")?.get("kind")?.as_str()? == "deadline"))
            .unwrap_or(false);
    stages.push(StageResult {
        name: "serve_deadline_probe",
        runs: 1,
        min_us: deadline_probe_ms * 1e3,
        mean_us: deadline_probe_ms * 1e3,
        max_us: deadline_probe_ms * 1e3,
        cert: None,
    });

    // Scrape phase: the exposition page must validate.
    let mut metrics_page_valid = false;
    stages.push(time_stage("serve_metrics_scrape", profile.iterations, || {
        let (status, page) = serve_request(addr, "GET", "/metrics", "")?;
        metrics_page_valid = status == 200 && rascad_obs::prometheus::validate(&page).is_ok();
        Ok(())
    })?);

    // Graceful drain: stop the daemon and collect its run summary.
    handle.shutdown();
    let summary =
        runner.join().map_err(|_| CliError::Serve("server thread panicked".to_string()))?;

    let load = ServeLoad {
        solves,
        requests: summary.requests,
        shed,
        shed_rate,
        p50_ms: percentile_ms(&latencies_ms, 50.0),
        p90_ms: percentile_ms(&latencies_ms, 90.0),
        p99_ms: percentile_ms(&latencies_ms, 99.0),
        deadline_probe_ms,
        deadline_typed,
        metrics_page_valid,
        bit_identical,
        drained_clean: summary.drained_clean,
        availability,
    };
    Ok((stages, load))
}

#[allow(clippy::cast_precision_loss)] // counters stay far below 2^52
fn serve_load_json(s: &ServeLoad) -> Value {
    Value::Obj(vec![
        ("solves".to_string(), Value::from(s.solves)),
        ("requests".to_string(), Value::from(s.requests as usize)),
        ("shed".to_string(), Value::from(s.shed as usize)),
        ("shed_rate".to_string(), Value::Num(s.shed_rate)),
        ("p50_ms".to_string(), Value::Num(s.p50_ms)),
        ("p90_ms".to_string(), Value::Num(s.p90_ms)),
        ("p99_ms".to_string(), Value::Num(s.p99_ms)),
        ("deadline_probe_ms".to_string(), Value::Num(s.deadline_probe_ms)),
        ("deadline_typed".to_string(), Value::from(s.deadline_typed)),
        ("metrics_page_valid".to_string(), Value::from(s.metrics_page_valid)),
        ("bit_identical".to_string(), Value::from(s.bit_identical)),
        ("drained_clean".to_string(), Value::from(s.drained_clean)),
        ("availability".to_string(), Value::Num(s.availability)),
    ])
}

fn run_suite(args: &BenchArgs) -> Result<String, CliError> {
    // Capture telemetry through the obs layer unless the user already
    // routed it elsewhere with --trace/--timings (then the document's
    // spans/counters/values sections stay empty).
    let tree = Arc::new(Mutex::new(SpanTreeAgg::new()));
    let metrics: Arc<Mutex<Option<MetricsSummary>>> = Arc::new(Mutex::new(None));
    let own_subscriber = !rascad_obs::enabled();
    if own_subscriber {
        rascad_obs::install(vec![Box::new(BenchCapture {
            tree: Arc::clone(&tree),
            metrics: Arc::clone(&metrics),
        })]);
    }
    let guard = CaptureGuard { active: own_subscriber };

    let (stages, checks, scaling, large, serve) = if args.sweep {
        let (stages, scaling) = run_sweep_stages(&args.profile)?;
        let checks = Checks {
            availability: scaling.availability,
            yearly_downtime_minutes: scaling.yearly_downtime_minutes,
            sim_availability: f64::NAN,
        };
        (stages, checks, Some(scaling), None, None)
    } else if args.large {
        let (stages, large) = run_large_stages(&args.profile)?;
        let checks = Checks {
            availability: large.block_availability,
            yearly_downtime_minutes: (1.0 - large.block_availability)
                * rascad_spec::units::Hours::PER_YEAR
                * 60.0,
            sim_availability: f64::NAN,
        };
        (stages, checks, None, Some(large), None)
    } else if args.serve {
        let (stages, serve) = run_serve_stages(&args.profile)?;
        let checks = Checks {
            availability: serve.availability,
            yearly_downtime_minutes: (1.0 - serve.availability)
                * rascad_spec::units::Hours::PER_YEAR
                * 60.0,
            sim_availability: f64::NAN,
        };
        (stages, checks, None, None, Some(serve))
    } else {
        let (stages, checks) = run_stages(&args.profile)?;
        (stages, checks, None, None, None)
    };

    if own_subscriber {
        rascad_obs::drain();
    }
    drop(guard);

    let mut doc = document(
        args,
        &stages,
        &checks,
        scaling.as_ref(),
        large.as_ref(),
        serve.as_ref(),
        &tree,
        &metrics,
    );

    let mut compare_report = None;
    if let Some(base_path) = &args.compare {
        let text = std::fs::read_to_string(base_path)
            .map_err(|source| CliError::Io { path: base_path.clone(), source })?;
        let baseline = json::parse(&text).map_err(|e| {
            CliError::usage(format!("baseline `{base_path}` is not valid JSON: {e}"))
        })?;
        check_document(&baseline)
            .map_err(|why| CliError::usage(format!("baseline `{base_path}`: {why}")))?;
        let outcome = compare_docs(&doc, &baseline, args);
        let report = render_compare(&outcome, base_path, args);
        if let Value::Obj(fields) = &mut doc {
            fields.push(("compare".to_string(), compare_json(&outcome, base_path, args)));
        }
        if outcome.fails > 0 {
            return Err(CliError::Regression(report));
        }
        compare_report = Some(report);
    }

    let out_path = match (&args.out, args.json) {
        (Some(path), _) => Some(path.clone()),
        (None, false) => Some(format!("BENCH_{}.json", args.label)),
        (None, true) => None,
    };
    if let Some(path) = &out_path {
        std::fs::write(path, doc.to_string_pretty())
            .map_err(|source| CliError::Io { path: path.clone(), source })?;
    }

    if args.json {
        let mut out = doc.to_string_pretty();
        out.push('\n');
        return Ok(out);
    }
    Ok(render_human(
        args,
        &stages,
        &checks,
        scaling.as_ref(),
        large.as_ref(),
        serve.as_ref(),
        compare_report.as_deref(),
        out_path.as_deref(),
    ))
}

// ---------------------------------------------------------------------------
// Document
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)] // one optional section per workload
fn document(
    args: &BenchArgs,
    stages: &[StageResult],
    checks: &Checks,
    scaling: Option<&SweepScaling>,
    large: Option<&LargeScaling>,
    serve: Option<&ServeLoad>,
    tree: &Arc<Mutex<SpanTreeAgg>>,
    metrics: &Arc<Mutex<Option<MetricsSummary>>>,
) -> Value {
    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let threads = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let env = Value::Obj(vec![
        ("os".to_string(), Value::from(std::env::consts::OS)),
        ("arch".to_string(), Value::from(std::env::consts::ARCH)),
        ("family".to_string(), Value::from(std::env::consts::FAMILY)),
        ("threads".to_string(), Value::from(threads)),
        ("debug_assertions".to_string(), Value::from(cfg!(debug_assertions))),
        ("pkg_version".to_string(), Value::from(env!("CARGO_PKG_VERSION"))),
    ]);
    let stages_json = Value::Arr(
        stages
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".to_string(), Value::from(s.name)),
                    ("runs".to_string(), Value::from(s.runs)),
                    ("min_us".to_string(), Value::Num(s.min_us)),
                    ("mean_us".to_string(), Value::Num(s.mean_us)),
                    ("max_us".to_string(), Value::Num(s.max_us)),
                ];
                if let Some(c) = &s.cert {
                    // Non-finite residuals serialize as null (JSON has
                    // no NaN); the fail verdict still records why.
                    fields.push((
                        "certificate".to_string(),
                        Value::Obj(vec![
                            ("method".to_string(), Value::from(c.method.as_str())),
                            ("verdict".to_string(), Value::from(c.verdict)),
                            ("residual".to_string(), Value::Num(c.residual)),
                            ("prob_mass_error".to_string(), Value::Num(c.prob_mass_error)),
                        ]),
                    ));
                }
                Value::Obj(fields)
            })
            .collect(),
    );
    let spans = tree.lock().map_or(Value::Arr(Vec::new()), |t| t.to_json());
    let (counters, gauges, values) =
        metrics.lock().ok().and_then(|mut slot| slot.take()).map_or_else(
            || (Value::Obj(Vec::new()), Value::Obj(Vec::new()), Value::Obj(Vec::new())),
            |m| {
                (
                    Value::Obj(
                        m.counters.iter().map(|(k, v)| (k.clone(), Value::from(*v))).collect(),
                    ),
                    Value::Obj(m.gauges.iter().map(|(k, v)| (k.clone(), Value::Num(*v))).collect()),
                    Value::Obj(m.values.iter().map(|(k, s)| (k.clone(), s.to_json())).collect()),
                )
            },
        );
    let mut checks_fields = vec![
        ("availability".to_string(), Value::Num(checks.availability)),
        ("yearly_downtime_minutes".to_string(), Value::Num(checks.yearly_downtime_minutes)),
    ];
    if scaling.is_none() && large.is_none() && serve.is_none() {
        // The sweep-scaling, large-state-space, and service workloads
        // run no simulator stage, so their documents omit the key
        // rather than recording a null.
        checks_fields.push(("sim_availability".to_string(), Value::Num(checks.sim_availability)));
    }
    let checks_json = Value::Obj(checks_fields);
    let mut fields = vec![
        ("schema".to_string(), Value::from(SCHEMA)),
        ("label".to_string(), Value::from(args.label.as_str())),
        ("profile".to_string(), Value::from(args.profile.name)),
        ("created_unix".to_string(), Value::from(created_unix)),
        ("env".to_string(), env),
        ("stages".to_string(), stages_json),
        ("spans".to_string(), spans),
        ("counters".to_string(), counters),
        ("gauges".to_string(), gauges),
        ("values".to_string(), values),
        ("checks".to_string(), checks_json),
    ];
    if let Some(s) = scaling {
        fields.push(("sweep_scaling".to_string(), sweep_scaling_json(s)));
    }
    if let Some(l) = large {
        fields.push(("large_scaling".to_string(), large_scaling_json(l)));
    }
    if let Some(s) = serve {
        fields.push(("serve_load".to_string(), serve_load_json(s)));
    }
    Value::Obj(fields)
}

/// Structural validation shared by `--validate` and `--compare`.
/// Returns `(label, profile, stage count)`.
fn check_document(doc: &Value) -> Result<(String, String, usize), String> {
    let schema = doc.get("schema").and_then(Value::as_str).ok_or("missing `schema` key")?;
    if schema != SCHEMA {
        return Err(format!("schema `{schema}` is not `{SCHEMA}`"));
    }
    let label = doc.get("label").and_then(Value::as_str).ok_or("missing `label`")?;
    let profile = doc.get("profile").and_then(Value::as_str).ok_or("missing `profile`")?;
    doc.get("created_unix").and_then(Value::as_f64).ok_or("missing `created_unix`")?;
    let env = doc.get("env").and_then(Value::as_object).ok_or("missing `env` object")?;
    for key in ["os", "arch", "threads", "debug_assertions", "pkg_version"] {
        if !env.iter().any(|(k, _)| k == key) {
            return Err(format!("env is missing `{key}`"));
        }
    }
    let stages = doc.get("stages").and_then(Value::as_array).ok_or("missing `stages` array")?;
    if stages.is_empty() {
        return Err("`stages` is empty".to_string());
    }
    for stage in stages {
        let name = stage.get("name").and_then(Value::as_str).ok_or("stage without `name`")?;
        for key in ["runs", "min_us", "mean_us", "max_us"] {
            let v = stage
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("stage `{name}` missing numeric `{key}`"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("stage `{name}` has bad `{key}`: {v}"));
            }
        }
        // Certificates arrived with the accuracy gate; timing-only
        // stages and older baselines omit them, but when present they
        // must be well-formed.
        if let Some(cert) = stage.get("certificate") {
            let verdict = cert
                .get("verdict")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("stage `{name}` certificate missing `verdict`"))?;
            if !["ok", "warn", "fail"].contains(&verdict) {
                return Err(format!("stage `{name}` has bad certificate verdict `{verdict}`"));
            }
            cert.get("method")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("stage `{name}` certificate missing `method`"))?;
            for key in ["residual", "prob_mass_error"] {
                let v = cert
                    .get(key)
                    .ok_or_else(|| format!("stage `{name}` certificate missing `{key}`"))?;
                // `null` is the JSON spelling of a non-finite residual
                // (which certifies as a fail verdict).
                if !(v.is_null() || v.as_f64().is_some()) {
                    return Err(format!("stage `{name}` certificate `{key}` is not a number"));
                }
                if v.as_f64().is_some_and(|x| x < 0.0) {
                    return Err(format!("stage `{name}` certificate has negative `{key}`"));
                }
            }
        }
    }
    doc.get("spans").and_then(Value::as_array).ok_or("missing `spans` array")?;
    doc.get("counters").and_then(Value::as_object).ok_or("missing `counters` object")?;
    // `gauges` arrived with the labeled registry; absent in older
    // baselines, but when present it must be an object.
    if let Some(g) = doc.get("gauges") {
        g.as_object().ok_or("`gauges` is not an object")?;
    }
    doc.get("values").and_then(Value::as_object).ok_or("missing `values` object")?;
    doc.get("checks").and_then(Value::as_object).ok_or("missing `checks` object")?;
    if let Some(scaling) = doc.get("sweep_scaling") {
        scaling.as_object().ok_or("`sweep_scaling` is not an object")?;
        for key in [
            "points",
            "blocks",
            "threads",
            "baseline_us",
            "engine_t1_us",
            "engine_tn_us",
            "speedup_vs_baseline",
            "thread_scaling",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
        ] {
            let v = scaling
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("sweep_scaling missing numeric `{key}`"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("sweep_scaling has bad `{key}`: {v}"));
            }
        }
        let identical = scaling
            .get("bit_identical")
            .and_then(Value::as_bool)
            .ok_or("sweep_scaling missing `bit_identical`")?;
        if !identical {
            return Err("sweep_scaling records bit_identical = false".to_string());
        }
    }
    if let Some(large) = doc.get("large_scaling") {
        large.as_object().ok_or("`large_scaling` is not an object")?;
        for key in [
            "sparse_states",
            "sparse_solve_us",
            "block_units",
            "block_states",
            "block_solve_us",
            "block_availability",
            "lump_proof_units",
            "lump_full_states",
            "lump_states",
            "lump_max_delta",
        ] {
            let v = large
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("large_scaling missing numeric `{key}`"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("large_scaling has bad `{key}`: {v}"));
            }
        }
        // The structural claims the workload exists to make — state
        // counts and exactness — are machine-independent, so they gate
        // validation outright (timings never do).
        let num = |key: &str| large.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        if num("sparse_states") < 10_000.0 {
            return Err(format!(
                "large_scaling sparse chain has only {} states; the workload exists to \
                 demonstrate >= 10000",
                num("sparse_states")
            ));
        }
        if (num("block_states") - num("block_units") - 1.0).abs() > 0.5 {
            return Err(
                "large_scaling block did not lump to units + 1 occupancy states".to_string()
            );
        }
        if (num("lump_states") - num("lump_proof_units") - 1.0).abs() > 0.5 {
            return Err("large_scaling lump proof did not collapse to n + 1 states".to_string());
        }
        let delta = num("lump_max_delta");
        if delta.is_nan() || delta > 1e-9 {
            return Err(format!("large_scaling lump proof deviates by {delta} (> 1e-9)"));
        }
        let identical = large
            .get("bit_identical")
            .and_then(Value::as_bool)
            .ok_or("large_scaling missing `bit_identical`")?;
        if !identical {
            return Err("large_scaling records bit_identical = false".to_string());
        }
        // The headline solve must have run on the sparse rung and
        // certified at the residual target.
        let sparse = stages
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some("large_sparse"))
            .ok_or("large_scaling document has no `large_sparse` stage")?;
        let cert = sparse.get("certificate").ok_or("`large_sparse` stage has no certificate")?;
        if cert.get("method").and_then(Value::as_str) != Some("sparse") {
            return Err("`large_sparse` stage was not solved by the sparse rung".to_string());
        }
        if cert.get("verdict").and_then(Value::as_str) != Some("ok") {
            return Err("`large_sparse` certificate verdict is not ok".to_string());
        }
        let residual = cert.get("residual").and_then(Value::as_f64).unwrap_or(f64::NAN);
        if residual.is_nan() || residual >= 1e-9 {
            return Err(format!("`large_sparse` certified residual {residual} is not < 1e-9"));
        }
    }
    if let Some(serve) = doc.get("serve_load") {
        serve.as_object().ok_or("`serve_load` is not an object")?;
        for key in [
            "solves",
            "requests",
            "shed",
            "shed_rate",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "deadline_probe_ms",
            "availability",
        ] {
            let v = serve
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("serve_load missing numeric `{key}`"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("serve_load has bad `{key}`: {v}"));
            }
        }
        for key in ["deadline_typed", "metrics_page_valid", "bit_identical", "drained_clean"] {
            let flag = serve
                .get(key)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("serve_load missing `{key}`"))?;
            if !flag {
                return Err(format!("serve_load records {key} = false"));
            }
        }
        // The robustness claims the workload exists to make — scale,
        // shedding, typed deadlines — are machine-independent, so they
        // gate validation outright (latency numbers never do).
        let num = |key: &str| serve.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        if num("solves") < 1000.0 {
            return Err(format!(
                "serve_load ran only {} solves; the workload exists to demonstrate >= 1000",
                num("solves")
            ));
        }
        if num("requests") < num("solves") {
            return Err("serve_load answered fewer requests than solves".to_string());
        }
        if num("shed") < 1.0 || num("shed_rate") <= 0.0 || num("shed_rate") > 1.0 {
            return Err(format!(
                "serve_load must shed under the saturating burst (shed {}, rate {})",
                num("shed"),
                num("shed_rate")
            ));
        }
        if !(num("p50_ms") <= num("p90_ms") && num("p90_ms") <= num("p99_ms")) {
            return Err("serve_load latency percentiles are not monotone".to_string());
        }
        let avail = num("availability");
        if !(avail > 0.0 && avail <= 1.0) {
            return Err(format!("serve_load availability {avail} is not in (0, 1]"));
        }
        for stage in ["serve_solve", "serve_shed_burst", "serve_deadline_probe"] {
            if !stages.iter().any(|s| s.get("name").and_then(Value::as_str) == Some(stage)) {
                return Err(format!("serve_load document has no `{stage}` stage"));
            }
        }
    }
    Ok((label.to_string(), profile.to_string(), stages.len()))
}

fn validate_file(path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })?;
    let doc = json::parse(&text)
        .map_err(|e| CliError::usage(format!("`{path}` is not valid JSON: {e}")))?;
    let (label, profile, n) =
        check_document(&doc).map_err(|why| CliError::usage(format!("`{path}`: {why}")))?;
    Ok(format!("ok: {path}: label \"{label}\", profile {profile}, {n} stages\n"))
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ok,
    Warn,
    Fail,
    New,
    Missing,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Warn => "warn",
            Status::Fail => "FAIL",
            Status::New => "new",
            Status::Missing => "missing",
        }
    }
}

#[derive(Debug)]
struct CompareRow {
    name: String,
    status: Status,
    base: f64,
    current: f64,
    ratio: f64,
}

#[derive(Debug)]
struct CompareOutcome {
    rows: Vec<CompareRow>,
    warns: usize,
    fails: usize,
}

fn stage_mins(doc: &Value) -> Vec<(String, f64)> {
    doc.get("stages")
        .and_then(Value::as_array)
        .map(|stages| {
            stages
                .iter()
                .filter_map(|s| {
                    let name = s.get("name")?.as_str()?;
                    let min = s.get("min_us")?.as_f64()?;
                    Some((name.to_string(), min))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn doc_counters(doc: &Value) -> Vec<(String, f64)> {
    doc.get("counters")
        .and_then(Value::as_object)
        .map(|obj| obj.iter().filter_map(|(k, v)| Some((k.clone(), v.as_f64()?))).collect())
        .unwrap_or_default()
}

/// `(stage name, certified residual, verdict)` for every stage that
/// carries a certificate. A `null` residual reads as NaN.
fn stage_certs(doc: &Value) -> Vec<(String, f64, String)> {
    doc.get("stages")
        .and_then(Value::as_array)
        .map(|stages| {
            stages
                .iter()
                .filter_map(|s| {
                    let name = s.get("name")?.as_str()?;
                    let cert = s.get("certificate")?;
                    let residual = cert.get("residual").and_then(Value::as_f64).unwrap_or(f64::NAN);
                    let verdict = cert.get("verdict")?.as_str()?;
                    Some((name.to_string(), residual, verdict.to_string()))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn verdict_rank(verdict: &str) -> f64 {
    match verdict {
        "ok" => 0.0,
        "warn" => 1.0,
        _ => 2.0,
    }
}

/// Compares the current document against a baseline: stage minimums by
/// ratio against the warn/fail thresholds (stages where both sides are
/// under the noise floor always pass), workload counters for drift
/// (mismatch is a warning — it means the suite itself changed).
fn compare_docs(current: &Value, baseline: &Value, args: &BenchArgs) -> CompareOutcome {
    let cur = stage_mins(current);
    let base = stage_mins(baseline);
    let mut rows = Vec::new();

    for (name, cur_us) in &cur {
        match base.iter().find(|(n, _)| n == name) {
            None => rows.push(CompareRow {
                name: name.clone(),
                status: Status::New,
                base: f64::NAN,
                current: *cur_us,
                ratio: f64::NAN,
            }),
            Some((_, base_us)) => {
                let ratio = cur_us / base_us.max(1e-9);
                let status = if *cur_us < args.floor_us && *base_us < args.floor_us {
                    Status::Ok
                } else if ratio >= args.fail_ratio {
                    Status::Fail
                } else if ratio >= args.warn_ratio {
                    Status::Warn
                } else {
                    Status::Ok
                };
                rows.push(CompareRow {
                    name: name.clone(),
                    status,
                    base: *base_us,
                    current: *cur_us,
                    ratio,
                });
            }
        }
    }
    for (name, base_us) in &base {
        if !cur.iter().any(|(n, _)| n == name) {
            rows.push(CompareRow {
                name: name.clone(),
                status: Status::Missing,
                base: *base_us,
                current: f64::NAN,
                ratio: f64::NAN,
            });
        }
    }

    // Accuracy gate: a certified residual growing by
    // [`ACCURACY_FAIL_RATIO`] over the baseline is a regression even if
    // every timing held — the solver got *less right*, not slower. A
    // current residual at or below the floor always passes (it is still
    // at certification precision); a verdict that worsened is flagged
    // regardless of ratio.
    let cur_certs = stage_certs(current);
    for (name, base_res, base_verdict) in stage_certs(baseline) {
        let Some((_, cur_res, cur_verdict)) = cur_certs.iter().find(|(n, _, _)| *n == name) else {
            continue;
        };
        let (cur_rank, base_rank) = (verdict_rank(cur_verdict), verdict_rank(&base_verdict));
        if cur_rank > base_rank {
            rows.push(CompareRow {
                name: format!("verdict:{name}"),
                status: if cur_verdict == "fail" { Status::Fail } else { Status::Warn },
                base: base_rank,
                current: cur_rank,
                ratio: f64::NAN,
            });
        }
        if cur_res.is_finite() && base_res.is_finite() && *cur_res > args.residual_floor {
            let ratio = cur_res / base_res.max(1e-300);
            let status = if ratio >= ACCURACY_FAIL_RATIO {
                Status::Fail
            } else if ratio >= ACCURACY_WARN_RATIO {
                Status::Warn
            } else {
                Status::Ok
            };
            if status != Status::Ok {
                rows.push(CompareRow {
                    name: format!("residual:{name}"),
                    status,
                    base: base_res,
                    current: *cur_res,
                    ratio,
                });
            }
        }
    }

    let cur_counters = doc_counters(current);
    for (name, base_count) in doc_counters(baseline) {
        if let Some((_, cur_count)) = cur_counters.iter().find(|(n, _)| *n == name) {
            if (cur_count - base_count).abs() > 1e-9 {
                rows.push(CompareRow {
                    name: format!("counter:{name}"),
                    status: Status::Warn,
                    base: base_count,
                    current: *cur_count,
                    ratio: cur_count / base_count.max(1e-9),
                });
            }
        }
    }

    let warns = rows.iter().filter(|r| matches!(r.status, Status::Warn | Status::Missing)).count();
    let fails = rows.iter().filter(|r| r.status == Status::Fail).count();
    CompareOutcome { rows, warns, fails }
}

/// Compare-row value formatting: timings print fixed-point, residuals
/// (tiny by construction) print scientific instead of rounding to 0.0.
fn fmt_compare_value(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v != 0.0 && v.abs() < 0.1 {
        format!("{v:.2e}")
    } else {
        format!("{v:.1}")
    }
}

fn render_compare(outcome: &CompareOutcome, base_path: &str, args: &BenchArgs) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "comparison against {base_path} (warn x{}, fail x{}, floor {} us, \
         accuracy fail x{ACCURACY_FAIL_RATIO} above residual {:.0e}):",
        args.warn_ratio, args.fail_ratio, args.floor_us, args.residual_floor
    );
    let _ = writeln!(
        out,
        "  {:<24} {:>8} {:>12} {:>12} {:>8}",
        "stage", "status", "base", "current", "ratio"
    );
    for row in &outcome.rows {
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>12} {:>12} {:>8}",
            row.name,
            row.status.as_str(),
            fmt_compare_value(row.base),
            fmt_compare_value(row.current),
            if row.ratio.is_finite() { format!("{:.2}x", row.ratio) } else { "-".to_string() },
        );
    }
    let _ =
        writeln!(out, "  result: {} regression(s), {} warning(s)", outcome.fails, outcome.warns);
    out
}

fn compare_json(outcome: &CompareOutcome, base_path: &str, args: &BenchArgs) -> Value {
    Value::Obj(vec![
        ("baseline".to_string(), Value::from(base_path)),
        ("warn_ratio".to_string(), Value::Num(args.warn_ratio)),
        ("fail_ratio".to_string(), Value::Num(args.fail_ratio)),
        ("floor_us".to_string(), Value::Num(args.floor_us)),
        ("residual_floor".to_string(), Value::Num(args.residual_floor)),
        (
            "rows".to_string(),
            Value::Arr(
                outcome
                    .rows
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("name".to_string(), Value::from(r.name.as_str())),
                            ("status".to_string(), Value::from(r.status.as_str())),
                            ("base_us".to_string(), Value::Num(r.base)),
                            ("current_us".to_string(), Value::Num(r.current)),
                            ("ratio".to_string(), Value::Num(r.ratio)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("warns".to_string(), Value::from(outcome.warns)),
        ("fails".to_string(), Value::from(outcome.fails)),
    ])
}

// ---------------------------------------------------------------------------
// Human report
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)] // one optional section per workload
fn render_human(
    args: &BenchArgs,
    stages: &[StageResult],
    checks: &Checks,
    scaling: Option<&SweepScaling>,
    large: Option<&LargeScaling>,
    serve: Option<&ServeLoad>,
    compare_report: Option<&str>,
    out_path: Option<&str>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "rascad bench: profile {}, label \"{}\"", args.profile.name, args.label);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<18} {:>4} {:>12} {:>12} {:>12}",
        "stage", "runs", "min us", "mean us", "max us"
    );
    for s in stages {
        let _ = writeln!(
            out,
            "  {:<18} {:>4} {:>12.1} {:>12.1} {:>12.1}",
            s.name, s.runs, s.min_us, s.mean_us, s.max_us
        );
    }
    let _ = writeln!(out);
    if let Some(s) = scaling {
        let _ = writeln!(
            out,
            "sweep scaling: {} points x {} blocks, engine at {} threads",
            s.points, s.blocks, s.threads
        );
        let _ = writeln!(
            out,
            "  speedup vs sequential baseline: {:.2}x (thread scaling alone: {:.2}x)",
            s.speedup_vs_baseline, s.thread_scaling
        );
        let _ = writeln!(
            out,
            "  cache: {} hits / {} misses ({:.1}% hit rate), results bit-identical: {}",
            s.cache_hits,
            s.cache_misses,
            100.0 * s.cache_hit_rate,
            s.bit_identical
        );
        let _ = writeln!(
            out,
            "checks: availability {:.9} ({:.1} min/y downtime)",
            checks.availability, checks.yearly_downtime_minutes
        );
    } else if let Some(l) = large {
        let _ = writeln!(
            out,
            "large state space: {} states on the sparse rung in {:.0} us, \
             repeated solves bit-identical: {}",
            l.sparse_states, l.sparse_solve_us, l.bit_identical
        );
        let _ = writeln!(
            out,
            "  {}-of-{} block: 2^{} product states lumped to {}, solved in {:.0} us",
            workloads::LARGE_BLOCK_MIN,
            l.block_units,
            l.block_units,
            l.block_states,
            l.block_solve_us
        );
        let _ = writeln!(
            out,
            "  lump proof: {} -> {} states, max classwise delta {:.2e}",
            l.lump_full_states, l.lump_states, l.lump_max_delta
        );
        let _ = writeln!(
            out,
            "checks: availability {:.9} ({:.1} min/y downtime)",
            checks.availability, checks.yearly_downtime_minutes
        );
    } else if let Some(s) = serve {
        let _ = writeln!(
            out,
            "serve load: {} solve(s) across {} request(s), latency p50 {:.1} / p90 {:.1} / \
             p99 {:.1} ms",
            s.solves, s.requests, s.p50_ms, s.p90_ms, s.p99_ms
        );
        let _ = writeln!(
            out,
            "  shed under burst: {} ({:.1}% of requests), responses bit-identical: {}",
            s.shed,
            100.0 * s.shed_rate,
            s.bit_identical
        );
        let _ = writeln!(
            out,
            "  50 ms deadline probe: typed deadline error {} in {:.1} ms; metrics page valid: \
             {}, drain clean: {}",
            s.deadline_typed, s.deadline_probe_ms, s.metrics_page_valid, s.drained_clean
        );
        let _ = writeln!(
            out,
            "checks: availability {:.9} ({:.1} min/y downtime)",
            checks.availability, checks.yearly_downtime_minutes
        );
    } else {
        let _ = writeln!(
            out,
            "checks: availability {:.9} ({:.1} min/y downtime), simulated {:.6}",
            checks.availability, checks.yearly_downtime_minutes, checks.sim_availability
        );
    }
    if let Some(report) = compare_report {
        let _ = writeln!(out);
        out.push_str(report);
    }
    if let Some(path) = out_path {
        let _ = writeln!(out);
        let _ = writeln!(out, "wrote {path}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::obs_test_lock;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    fn run_bench(args: &[&str]) -> Result<String, CliError> {
        bench(args)
    }

    #[test]
    fn quick_json_is_schema_valid_with_solver_diagnostics() {
        let _lock = obs_test_lock();
        let out = run_bench(&["--quick", "--json", "--label", "unit"]).unwrap();
        let doc = json::parse(&out).unwrap();
        let (label, profile, n) = check_document(&doc).unwrap();
        assert_eq!(label, "unit");
        assert_eq!(profile, "quick");
        assert!(n >= 10, "expected >= 10 stages, got {n}");

        let names: Vec<&str> = doc
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        for stage in [
            "parse_dsl",
            "generate_type0",
            "generate_type4",
            "solve_gth",
            "solve_lu",
            "solve_power",
            "transient",
            "interval_exact",
            "hierarchy",
            "sweep",
            "simulate",
        ] {
            assert!(names.contains(&stage), "missing stage {stage}: {names:?}");
        }

        // Solver numerical-health telemetry captured through rascad-obs.
        let values = doc.get("values").unwrap();
        for key in [
            "markov.gth.min_pivot",
            "markov.residual{method=\"power\"}",
            "markov.iterations{method=\"power\"}",
            "markov.lu.condest",
            "markov.transient.truncation",
        ] {
            let snap = values.get(key).unwrap_or_else(|| panic!("missing value {key}"));
            assert!(snap.get("count").unwrap().as_f64().unwrap() >= 1.0, "{key}");
        }
        let counters = doc.get("counters").unwrap();
        for key in [
            "markov.solves{method=\"gth\"}",
            "markov.transient.solves",
            "sim.replications",
            "solve.certified{verdict=\"ok\"}",
        ] {
            assert!(
                counters.get(key).and_then(Value::as_f64).unwrap_or(0.0) >= 1.0,
                "missing counter {key}"
            );
        }

        // Every solving stage carries an accuracy certificate; the
        // deterministic workload certifies clean.
        let stages = doc.get("stages").unwrap().as_array().unwrap();
        for name in ["solve_gth", "solve_lu", "solve_power", "transient", "hierarchy", "sweep"] {
            let stage = stages
                .iter()
                .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
                .unwrap();
            let cert = stage
                .get("certificate")
                .unwrap_or_else(|| panic!("stage {name} has no certificate"));
            assert_eq!(cert.get("verdict").and_then(Value::as_str), Some("ok"), "{name}");
            let residual = cert.get("residual").and_then(Value::as_f64).unwrap();
            assert!(residual.is_finite() && residual >= 0.0, "{name}: {residual}");
        }
        // Timing-only stages don't.
        let parse = stages
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some("parse_dsl"))
            .unwrap();
        assert!(parse.get("certificate").is_none());

        // Span aggregates are present and depth-sorted.
        let spans = doc.get("spans").unwrap().as_array().unwrap();
        assert!(!spans.is_empty());
        let depths: Vec<i64> =
            spans.iter().map(|s| s.get("depth").unwrap().as_i64().unwrap()).collect();
        let mut sorted = depths.clone();
        sorted.sort_unstable();
        assert_eq!(depths, sorted);

        // Checks pin the numerical answers.
        let avail = doc.get("checks").unwrap().get("availability").unwrap().as_f64().unwrap();
        assert!(avail > 0.99 && avail < 1.0, "{avail}");
    }

    #[test]
    fn sweep_mode_emits_scaling_section() {
        let _lock = obs_test_lock();
        let out = run_bench(&["--sweep", "--quick", "--json"]).unwrap();
        let doc = json::parse(&out).unwrap();
        let (label, profile, n) = check_document(&doc).unwrap();
        assert_eq!(label, "sweep");
        assert_eq!(profile, "quick");
        assert_eq!(n, 3);

        let names: Vec<&str> = doc
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, ["sweep_baseline_seq", "sweep_engine_t1", "sweep_engine_tn"]);

        let scaling = doc.get("sweep_scaling").unwrap();
        assert_eq!(scaling.get("points").unwrap().as_i64(), Some(20));
        assert_eq!(scaling.get("blocks").unwrap().as_i64(), Some(10));
        assert_eq!(scaling.get("bit_identical").unwrap().as_bool(), Some(true));
        // The hit rate is a deterministic property of the workload (the
        // nine unswept blocks hit on 19 of 20 points), unlike the
        // timing ratios, which this test deliberately leaves alone.
        let hit_rate = scaling.get("cache_hit_rate").unwrap().as_f64().unwrap();
        assert!(hit_rate > 0.8, "hit rate {hit_rate}");
        assert!(scaling.get("speedup_vs_baseline").unwrap().as_f64().unwrap() > 0.0);

        // No simulator stage ran, so the checks omit its key.
        assert!(doc.get("checks").unwrap().get("sim_availability").is_none());
        assert!(doc.get("checks").unwrap().get("availability").unwrap().as_f64().unwrap() > 0.9);
    }

    #[test]
    fn large_mode_emits_scaling_section() {
        let _lock = obs_test_lock();
        let out = run_bench(&["--large", "--quick", "--json"]).unwrap();
        let doc = json::parse(&out).unwrap();
        let (label, profile, n) = check_document(&doc).unwrap();
        assert_eq!(label, "large");
        assert_eq!(profile, "quick");
        assert_eq!(n, 4);

        let names: Vec<&str> = doc
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            names,
            ["large_sparse", "large_block_generate", "large_block_solve", "lump_proof"]
        );

        // check_document already gated the structural claims (sparse
        // rung, ok verdict, residual < 1e-9, lump exactness); pin the
        // quick profile's sizes on top.
        let scaling = doc.get("large_scaling").unwrap();
        assert_eq!(scaling.get("sparse_states").unwrap().as_i64(), Some(10_000));
        assert_eq!(scaling.get("block_units").unwrap().as_i64(), Some(1000));
        assert_eq!(scaling.get("block_states").unwrap().as_i64(), Some(1001));
        assert_eq!(scaling.get("lump_full_states").unwrap().as_i64(), Some(256));
        assert_eq!(scaling.get("lump_states").unwrap().as_i64(), Some(9));

        // No simulator stage ran, so the checks omit its key.
        assert!(doc.get("checks").unwrap().get("sim_availability").is_none());
        assert!(doc.get("checks").unwrap().get("availability").unwrap().as_f64().unwrap() > 0.99);
    }

    #[test]
    fn serve_mode_emits_serve_load_section() {
        let _lock = obs_test_lock();
        let out = run_bench(&["--serve", "--quick", "--json"]).unwrap();
        let doc = json::parse(&out).unwrap();
        let (label, profile, n) = check_document(&doc).unwrap();
        assert_eq!(label, "serve");
        assert_eq!(profile, "quick");
        assert_eq!(n, 4);

        let names: Vec<&str> = doc
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            names,
            ["serve_solve", "serve_shed_burst", "serve_deadline_probe", "serve_metrics_scrape"]
        );

        // check_document already gated the structural claims (>= 1000
        // solves, shed under burst, typed deadline, valid metrics page,
        // bit-identical responses, clean drain); pin the workload shape.
        let load = doc.get("serve_load").unwrap();
        assert!(load.get("solves").unwrap().as_i64().unwrap() >= 1000);
        assert_eq!(load.get("deadline_typed").unwrap().as_bool(), Some(true));
        assert_eq!(load.get("drained_clean").unwrap().as_bool(), Some(true));

        // No simulator stage ran, so the checks omit its key.
        assert!(doc.get("checks").unwrap().get("sim_availability").is_none());
        assert!(doc.get("checks").unwrap().get("availability").unwrap().as_f64().unwrap() > 0.9);
    }

    #[test]
    fn workload_flags_are_mutually_exclusive() {
        for combo in [
            &["--sweep", "--large"][..],
            &["--sweep", "--serve"],
            &["--large", "--serve"],
            &["--sweep", "--large", "--serve"],
        ] {
            assert!(matches!(bench(combo), Err(CliError::Usage(_))), "{combo:?}");
        }
    }

    #[test]
    fn corrupt_large_scaling_fails_validation() {
        // A baseline whose lump proof drifted past 1e-9 must be
        // rejected outright, not compared.
        let doc = json::parse(
            r#"{"schema":"rascad-bench/v1","label":"large","profile":"quick",
                "created_unix":0,
                "env":{"os":"linux","arch":"x86_64","threads":1,
                       "debug_assertions":false,"pkg_version":"0"},
                "stages":[{"name":"large_sparse","runs":1,"min_us":1.0,
                           "mean_us":1.0,"max_us":1.0,
                           "certificate":{"method":"sparse","verdict":"ok",
                                          "residual":1e-12,"prob_mass_error":0.0}}],
                "spans":[],"counters":{},"values":{},"checks":{},
                "large_scaling":{"sparse_states":100000,"sparse_solve_us":1.0,
                                 "bit_identical":true,"block_units":1000,
                                 "block_states":1001,"block_solve_us":1.0,
                                 "block_availability":0.999,"lump_proof_units":8,
                                 "lump_full_states":256,"lump_states":9,
                                 "lump_max_delta":1e-6}}"#,
        )
        .unwrap();
        let err = check_document(&doc).unwrap_err();
        assert!(err.contains("lump proof deviates"), "{err}");
    }

    #[test]
    fn compare_against_own_baseline_passes() {
        let _lock = obs_test_lock();
        let path = tmp("rascad_bench_base_ok.json");
        run_bench(&["--quick", "--out", path.to_str().unwrap(), "--json"]).unwrap();
        // Loose thresholds so machine noise can't flake the test; the
        // mechanics (matching, ratio math, exit path) are what's under
        // test here.
        let out = run_bench(&[
            "--quick",
            "--json",
            "--compare",
            path.to_str().unwrap(),
            "--warn-ratio",
            "50",
            "--fail-ratio",
            "100",
        ])
        .unwrap();
        let doc = json::parse(&out).unwrap();
        let cmp = doc.get("compare").unwrap();
        assert_eq!(cmp.get("fails").unwrap().as_i64(), Some(0));
        assert!(!cmp.get("rows").unwrap().as_array().unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_slowdown_trips_regression_exit_code() {
        let _lock = obs_test_lock();
        let path = tmp("rascad_bench_base_slow.json");
        run_bench(&["--quick", "--out", path.to_str().unwrap(), "--json"]).unwrap();

        // Doctor the baseline: shrink every stage minimum 1000x, which
        // makes the (unchanged) current run look like a huge slowdown.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut doc = json::parse(&text).unwrap();
        if let Value::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "stages" {
                    if let Value::Arr(stages) = value {
                        for stage in stages {
                            if let Value::Obj(stage_fields) = stage {
                                for (k, v) in stage_fields.iter_mut() {
                                    if k == "min_us" {
                                        if let Value::Num(us) = v {
                                            *us /= 1000.0;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        std::fs::write(&path, doc.to_string_pretty()).unwrap();

        let err = run_bench(&["--quick", "--compare", path.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err:?}");
        let report = err.to_string();
        assert!(report.contains("FAIL"), "{report}");
        assert!(report.contains("regression"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_accepts_emitted_and_rejects_corrupt() {
        let _lock = obs_test_lock();
        let path = tmp("rascad_bench_validate.json");
        run_bench(&["--quick", "--out", path.to_str().unwrap(), "--json"]).unwrap();
        let out = run_bench(&["--validate", path.to_str().unwrap()]).unwrap();
        assert!(out.starts_with("ok:"), "{out}");

        std::fs::write(&path, "{\"schema\": \"other/v9\"}").unwrap();
        let err = run_bench(&["--validate", path.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 2);

        std::fs::write(&path, "not json").unwrap();
        assert!(run_bench(&["--validate", path.to_str().unwrap()]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compare_statuses_cover_ok_warn_fail_new_missing() {
        let mk = |stages: &[(&str, f64)], counters: &[(&str, f64)]| {
            Value::Obj(vec![
                (
                    "stages".to_string(),
                    Value::Arr(
                        stages
                            .iter()
                            .map(|(n, us)| {
                                Value::Obj(vec![
                                    ("name".to_string(), Value::from(*n)),
                                    ("min_us".to_string(), Value::Num(*us)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "counters".to_string(),
                    Value::Obj(
                        counters.iter().map(|(n, v)| ((*n).to_string(), Value::Num(*v))).collect(),
                    ),
                ),
            ])
        };
        let args = BenchArgs {
            profile: BenchProfile::quick(),
            label: "t".to_string(),
            out: None,
            json: false,
            compare: None,
            warn_ratio: 1.25,
            fail_ratio: 2.0,
            floor_us: 50.0,
            residual_floor: DEFAULT_RESIDUAL_FLOOR,
            sweep: false,
            large: false,
            serve: false,
        };
        let baseline = mk(
            &[
                ("steady", 1000.0),
                ("slower", 1000.0),
                ("much_slower", 1000.0),
                ("gone", 500.0),
                ("noise", 10.0),
            ],
            &[("solves", 5.0), ("drift", 7.0)],
        );
        let current = mk(
            &[
                ("steady", 1010.0),
                ("slower", 1500.0),
                ("much_slower", 2500.0),
                ("fresh", 80.0),
                ("noise", 40.0),
            ],
            &[("solves", 5.0), ("drift", 9.0)],
        );
        let outcome = compare_docs(&current, &baseline, &args);
        let status =
            |name: &str| outcome.rows.iter().find(|r| r.name == name).map(|r| r.status).unwrap();
        assert_eq!(status("steady"), Status::Ok);
        assert_eq!(status("slower"), Status::Warn);
        assert_eq!(status("much_slower"), Status::Fail);
        assert_eq!(status("fresh"), Status::New);
        assert_eq!(status("gone"), Status::Missing);
        // Both under the 50 us floor: 4x ratio still passes.
        assert_eq!(status("noise"), Status::Ok);
        assert_eq!(status("counter:drift"), Status::Warn);
        assert_eq!(outcome.fails, 1);
        assert!(outcome.warns >= 3, "{outcome:?}");
    }

    #[test]
    fn accuracy_gate_flags_residual_growth_and_verdict_regression() {
        let mk = |stages: &[(&str, f64, &str)]| {
            Value::Obj(vec![
                (
                    "stages".to_string(),
                    Value::Arr(
                        stages
                            .iter()
                            .map(|(n, res, verdict)| {
                                Value::Obj(vec![
                                    ("name".to_string(), Value::from(*n)),
                                    ("min_us".to_string(), Value::Num(1000.0)),
                                    (
                                        "certificate".to_string(),
                                        Value::Obj(vec![
                                            ("method".to_string(), Value::from(*n)),
                                            ("verdict".to_string(), Value::from(*verdict)),
                                            ("residual".to_string(), Value::Num(*res)),
                                            ("prob_mass_error".to_string(), Value::Num(0.0)),
                                        ]),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("counters".to_string(), Value::Obj(Vec::new())),
            ])
        };
        let args = BenchArgs {
            profile: BenchProfile::quick(),
            label: "t".to_string(),
            out: None,
            json: false,
            compare: None,
            warn_ratio: 1.25,
            fail_ratio: 2.0,
            floor_us: 50.0,
            residual_floor: DEFAULT_RESIDUAL_FLOOR,
            sweep: false,
            large: false,
            serve: false,
        };
        let baseline = mk(&[
            ("blown", 1e-12, "ok"),
            ("drifted", 1e-10, "ok"),
            ("tiny", 1e-16, "ok"),
            ("worse_verdict", 1e-12, "ok"),
        ]);
        let current = mk(&[
            // 100x the baseline residual: accuracy regression, exit 6.
            ("blown", 1e-10, "ok"),
            // 4x: warned, not failed.
            ("drifted", 4e-10, "ok"),
            // Grew 100x but stayed under the floor: still pristine.
            ("tiny", 1e-14, "ok"),
            // Verdict regressed to fail (e.g. non-finite residual).
            ("worse_verdict", f64::NAN, "fail"),
        ]);
        let outcome = compare_docs(&current, &baseline, &args);
        let status =
            |name: &str| outcome.rows.iter().find(|r| r.name == name).map(|r| r.status).unwrap();
        assert_eq!(status("residual:blown"), Status::Fail);
        assert_eq!(status("residual:drifted"), Status::Warn);
        assert!(!outcome.rows.iter().any(|r| r.name == "residual:tiny"), "{outcome:?}");
        assert_eq!(status("verdict:worse_verdict"), Status::Fail);
        // Timing rows are untouched (all 1000 us, ratio 1).
        assert_eq!(status("blown"), Status::Ok);
        assert_eq!(outcome.fails, 2);
    }

    #[test]
    fn injected_residual_regression_trips_the_accuracy_gate() {
        let _lock = obs_test_lock();
        let path = tmp("rascad_bench_base_accuracy.json");
        run_bench(&["--quick", "--out", path.to_str().unwrap(), "--json"]).unwrap();

        // Doctor the baseline: shrink every certified residual a
        // million-fold, which makes the (numerically unchanged) current
        // run look like a huge loss of accuracy.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut doc = json::parse(&text).unwrap();
        let mut doctored = 0;
        if let Value::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                let Value::Arr(stages) = value else { continue };
                if key != "stages" {
                    continue;
                }
                for stage in stages {
                    let Value::Obj(stage_fields) = stage else { continue };
                    for (k, v) in stage_fields.iter_mut() {
                        let Value::Obj(cert_fields) = v else { continue };
                        if k != "certificate" {
                            continue;
                        }
                        for (ck, cv) in cert_fields.iter_mut() {
                            if ck == "residual" {
                                if let Value::Num(r) = cv {
                                    if *r > 0.0 {
                                        *r /= 1e6;
                                        doctored += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(doctored > 0, "workload must certify at least one nonzero residual");
        std::fs::write(&path, doc.to_string_pretty()).unwrap();

        // The same run compared against the doctored baseline: residuals
        // are bit-identical run to run, so the 1e6 ratio is real signal.
        // --residual-floor 0 keeps near-machine-precision residuals in
        // scope for this single-machine check.
        let err =
            run_bench(&["--quick", "--compare", path.to_str().unwrap(), "--residual-floor", "0"])
                .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err:?}");
        let report = err.to_string();
        assert!(report.contains("residual:"), "{report}");
        assert!(report.contains("FAIL"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_options_are_usage_errors() {
        assert!(matches!(bench(&["--bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(bench(&["--label"]), Err(CliError::Usage(_))));
        assert!(matches!(bench(&["--label", "no/slash"]), Err(CliError::Usage(_))));
        assert!(matches!(
            bench(&["--warn-ratio", "3", "--fail-ratio", "2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(bench(&["--validate"]), Err(CliError::Usage(_))));
    }
}
