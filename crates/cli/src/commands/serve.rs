//! `rascad serve` — run the availability-model daemon.
//!
//! Thin argument shim over [`rascad_serve::Server`]: parse flags into a
//! [`rascad_serve::ServeConfig`], bind, wire SIGTERM/SIGINT to the
//! graceful-shutdown handle, and serve until asked to stop. The run
//! summary (requests, sheds, failures, drain outcome) is the command's
//! output; a bind failure or an unclean drain exits 9.

use std::time::Duration;

use rascad_serve::{ServeConfig, Server};

use super::CliError;

/// Parses `serve` arguments into a config.
fn parse_args(args: &[&str]) -> Result<ServeConfig, CliError> {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter().copied();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().ok_or_else(|| CliError::usage(format!("{flag} needs a value")));
        match a {
            "--addr" => cfg.addr = value("--addr")?.to_string(),
            "--max-inflight" => {
                cfg.admission.max_inflight = parse_positive(value("--max-inflight")?, a)?;
            }
            "--max-per-tenant" => {
                cfg.admission.max_per_tenant = parse_positive(value("--max-per-tenant")?, a)?;
            }
            "--retry-after" => {
                cfg.admission.retry_after_secs = parse_positive(value("--retry-after")?, a)?;
            }
            "--max-specs" => {
                cfg.max_specs_per_tenant = parse_positive(value("--max-specs")?, a)?;
            }
            "--drain-secs" => {
                cfg.drain_timeout = Duration::from_secs(parse_positive(value("--drain-secs")?, a)?);
            }
            "--metrics-final" => {
                cfg.final_metrics_out = Some(std::path::PathBuf::from(value("--metrics-final")?));
            }
            other => {
                return Err(CliError::usage(format!("unknown serve option `{other}`")));
            }
        }
    }
    Ok(cfg)
}

fn parse_positive<T: std::str::FromStr + PartialOrd + Default>(
    s: &str,
    flag: &str,
) -> Result<T, CliError> {
    s.parse()
        .ok()
        .filter(|n| *n > T::default())
        .ok_or_else(|| CliError::usage(format!("bad value for {flag}: `{s}`")))
}

/// Runs the daemon until SIGTERM/SIGINT. Blocks the calling thread.
pub fn serve(args: &[&str]) -> Result<String, CliError> {
    let cfg = parse_args(args)?;
    let server = Server::bind(cfg).map_err(|e| CliError::Serve(format!("cannot bind: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Serve(format!("cannot read bound address: {e}")))?;
    eprintln!("rascad serve: listening on http://{addr} (SIGTERM drains and exits)");
    rascad_serve::server::signal::install(server.shutdown_handle());
    let summary = server.run();
    let report = format!(
        "serve: {} request(s), {} shed, {} failure(s), drain {}\n",
        summary.requests,
        summary.shed,
        summary.failures,
        if summary.drained_clean { "clean" } else { "timed out" },
    );
    if summary.drained_clean {
        Ok(report)
    } else {
        Err(CliError::Serve(format!("{report}in-flight requests outlived the drain timeout")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_into_the_config() {
        let cfg = parse_args(&[
            "--addr",
            "127.0.0.1:0",
            "--max-inflight",
            "3",
            "--max-per-tenant",
            "2",
            "--retry-after",
            "9",
            "--max-specs",
            "5",
            "--drain-secs",
            "12",
            "--metrics-final",
            "/tmp/final.prom",
        ])
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.admission.max_inflight, 3);
        assert_eq!(cfg.admission.max_per_tenant, 2);
        assert_eq!(cfg.admission.retry_after_secs, 9);
        assert_eq!(cfg.max_specs_per_tenant, 5);
        assert_eq!(cfg.drain_timeout, Duration::from_secs(12));
        assert_eq!(cfg.final_metrics_out.as_deref(), Some(std::path::Path::new("/tmp/final.prom")));
    }

    #[test]
    fn bad_flags_are_usage_errors() {
        for bad in [
            &["--max-inflight", "0"][..],
            &["--max-inflight", "x"],
            &["--drain-secs"],
            &["--frobnicate"],
        ] {
            let err = parse_args(bad).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}");
        }
    }

    #[test]
    fn bind_failure_is_a_serve_error() {
        // `Server::bind` touches the process-global obs registry;
        // serialize with the other registry-installing tests.
        let _lock = super::super::obs_test_lock();
        // An unresolvable bind address fails regardless of privileges.
        let err = serve(&["--addr", "definitely-not-an-address"]).unwrap_err();
        assert_eq!(err.exit_code(), 9);
        assert!(matches!(err, CliError::Serve(_)));
    }
}
