//! `fielddata` command: synthetic field data + model comparison.

use std::fmt::Write as _;

use rascad_core::solve_spec;
use rascad_fielddata::{analyze, compare, OutageLog};
use rascad_sim::fieldgen::{generate_field_data, FieldDataOptions};
use rascad_spec::SystemSpec;

use super::{num_arg, CliError};

/// Runs `fielddata [months [servers [seed]]]`.
pub fn fielddata(spec: &SystemSpec, args: &[&str]) -> Result<String, CliError> {
    let months: f64 = num_arg(args, 0, 15.0, "month count")?;
    let servers: usize = num_arg(args, 1, 2, "server count")?;
    let seed: u64 = num_arg(args, 2, 0xf1e1d, "seed")?;

    let records = generate_field_data(
        spec,
        &FieldDataOptions { months, servers, seed, deterministic_repairs: true },
    )?;
    let logs: Vec<OutageLog> = records
        .iter()
        .map(|r| {
            let events: Vec<(f64, bool)> =
                r.log.events.iter().map(|e| (e.time_hours, e.up)).collect();
            OutageLog::from_events(r.log.horizon_hours, &events)
        })
        .collect();
    let field = analyze(&logs);
    let predicted = solve_spec(spec)?.system.availability;
    let cmp = compare(predicted, &field);

    let mut out = String::new();
    let _ =
        writeln!(out, "Synthetic field data: {servers} server(s) x {months} month(s), seed {seed}");
    for (r, log) in records.iter().zip(&logs) {
        let _ = writeln!(
            out,
            "  server {}: {} outages, availability {:.6}, downtime {:.2} h",
            r.server,
            log.outages().len(),
            log.availability(),
            log.downtime_hours()
        );
    }
    let _ = writeln!(
        out,
        "  pooled: {} outages, MTBF {:.1} h, MTTR {:.2} h",
        field.outages, field.mtbf_hours, field.mttr_hours
    );
    let _ = writeln!(out, "{cmp}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rascad_library::cluster::two_node_cluster;

    #[test]
    fn fielddata_reports_comparison() {
        let spec = two_node_cluster(Default::default());
        let out = fielddata(&spec, &["15", "2", "7"]).unwrap();
        assert!(out.contains("server 0"));
        assert!(out.contains("server 1"));
        assert!(out.contains("model-vs-field comparison"));
    }

    #[test]
    fn defaults_apply() {
        let spec = two_node_cluster(Default::default());
        let out = fielddata(&spec, &[]).unwrap();
        assert!(out.contains("2 server(s) x 15 month(s)"));
    }
}
