//! `rascad lint` — run the static analyzer on a specification.
//!
//! Tier A (spec analyses) always runs; Tier B (generated-model
//! analyses) runs when Tier A found no errors, since generating models
//! from an erroneous spec would either fail or analyze garbage; Tier C
//! (structural analyses over the BDD-compiled structure function)
//! opts in via `--tier-c` under the same gate. When later tiers are
//! requested but Tier A errors block them, an explicit `RAS199` note
//! marks the report as "not analyzed" rather than "clean". Findings
//! print as a human table, JSON lines, or SARIF; blocking findings
//! (errors, or warnings under `--deny warnings`) exit with code 7.

use rascad_lint::{lint_spec, render, tier_b, tier_c, DenyLevel, LintReport};

use super::CliError;

/// Output format for the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

/// Parsed `lint` arguments.
struct LintArgs<'a> {
    spec: Option<&'a str>,
    format: Format,
    deny: DenyLevel,
    tier_b: bool,
    tier_c: bool,
    max_cut_order: usize,
    explain: Option<&'a str>,
}

fn parse_args<'a>(args: &[&'a str]) -> Result<LintArgs<'a>, CliError> {
    let mut parsed = LintArgs {
        spec: None,
        format: Format::Human,
        deny: DenyLevel::Errors,
        tier_b: true,
        tier_c: false,
        max_cut_order: tier_c::DEFAULT_MAX_CUT_ORDER,
        explain: None,
    };
    let mut it = args.iter().copied();
    while let Some(a) = it.next() {
        match a {
            "--format" => {
                parsed.format = match it.next() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(CliError::usage(format!(
                            "--format needs `human`, `json`, or `sarif`, got `{}`",
                            other.unwrap_or("nothing")
                        )));
                    }
                };
            }
            "--deny" => match it.next() {
                Some("warnings") => parsed.deny = DenyLevel::Warnings,
                other => {
                    return Err(CliError::usage(format!(
                        "--deny supports `warnings`, got `{}`",
                        other.unwrap_or("nothing")
                    )));
                }
            },
            "--no-tier-b" => parsed.tier_b = false,
            "--tier-c" => parsed.tier_c = true,
            "--max-cut-order" => {
                let value =
                    it.next().ok_or_else(|| CliError::usage("--max-cut-order needs a number"))?;
                parsed.max_cut_order = match value.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(CliError::usage(format!(
                            "--max-cut-order needs an integer >= 1, got `{value}`"
                        )));
                    }
                };
            }
            "--explain" => {
                parsed.explain = Some(
                    it.next().ok_or_else(|| CliError::usage("--explain needs a RASxxx code"))?,
                );
            }
            other if parsed.spec.is_none() && !other.starts_with("--") => {
                parsed.spec = Some(other);
            }
            other => {
                return Err(CliError::usage(format!("unknown lint argument `{other}`")));
            }
        }
    }
    Ok(parsed)
}

/// Runs the `lint` subcommand.
pub fn lint(args: &[&str]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    if let Some(code) = parsed.explain {
        let entry = rascad_lint::catalog::lookup(code).ok_or_else(|| {
            CliError::usage(format!("unknown diagnostic code `{code}`; codes are RAS001–RAS205"))
        })?;
        return Ok(rascad_lint::catalog::explain(entry));
    }

    let path =
        parsed.spec.ok_or_else(|| CliError::usage("lint needs a spec file argument (or `-`)"))?;
    let (spec, source) = load_with_source(path)?;

    let mut report = lint_spec(&spec);
    if report.has_errors() {
        if parsed.tier_b || parsed.tier_c {
            report.extend(vec![rascad_lint::tiers_skipped_note(&spec.root.name)]);
        }
    } else {
        if parsed.tier_b {
            run_tier_b(&spec, &mut report);
        }
        if parsed.tier_c {
            run_tier_c(&spec, parsed.max_cut_order, &mut report);
        }
    }
    // Annotate last so Tier B/C findings get source positions too.
    if let Some(src) = &source {
        rascad_spec::dsl::source_map::annotate(&mut report.diagnostics, src);
    }

    let rendered = match parsed.format {
        Format::Human => render::render_human(&report),
        Format::Json => render::render_json(&report),
        Format::Sarif => render::render_sarif(&report, Some(path).filter(|p| *p != "-")),
    };
    if report.is_blocking(parsed.deny) {
        Err(CliError::Lint(rendered))
    } else {
        Ok(rendered)
    }
}

/// Loads a spec, keeping the DSL source text for position annotation.
/// `-` reads the DSL from stdin.
fn load_with_source(path: &str) -> Result<(rascad_spec::SystemSpec, Option<String>), CliError> {
    if path == "-" {
        let mut text = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
            .map_err(|source| CliError::Io { path: "<stdin>".to_string(), source })?;
        let spec = rascad_spec::SystemSpec::from_dsl(&text)?;
        return Ok((spec, Some(text)));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })?;
    if path.ends_with(".json") {
        Ok((rascad_spec::SystemSpec::from_json(&text)?, None))
    } else {
        let spec = rascad_spec::SystemSpec::from_dsl(&text)?;
        Ok((spec, Some(text)))
    }
}

/// Generates every block's chain and runs the Tier B analyses.
fn run_tier_b(spec: &rascad_spec::SystemSpec, report: &mut LintReport) {
    let mut diags = Vec::new();
    spec.root.walk(&mut |_, path, block| {
        // Blocks that fail generation are a solver concern, not a lint
        // finding; `solve` reports them with full context.
        if let Ok(m) = rascad_core::generate_block(&block.params, &spec.globals) {
            diags.extend(tier_b::analyze_chain(path, &m.chain));
        }
    });
    report.extend(diags);
}

/// Runs the Tier C structural analyses, feeding the exact solve in
/// for the RAS205 bound cross-check when the solver accepts the spec.
fn run_tier_c(spec: &rascad_spec::SystemSpec, max_cut_order: usize, report: &mut LintReport) {
    let exact = rascad_core::solve_spec(spec).ok().map(|sol| tier_c::ExactSolve {
        system_unavailability: 1.0 - sol.system.availability,
        blocks: sol
            .blocks
            .iter()
            .map(|b| (b.path.clone(), 1.0 - b.measures.availability))
            .collect(),
    });
    let opts = tier_c::TierCOptions { max_cut_order, ..Default::default() };
    report.extend(tier_c::analyze_structure(spec, &opts, exact.as_ref()));
}

/// Tier A gate run before `solve`/`sweep`/`simulate` (unless
/// `--no-lint`): warnings and notes go to stderr, errors abort with
/// every diagnostic attached.
pub fn tier_a_gate(spec: &rascad_spec::SystemSpec) -> Result<(), CliError> {
    let report = lint_spec(spec);
    if report.has_errors() {
        return Err(CliError::Spec(rascad_spec::SpecError::Invalid {
            diagnostics: report.diagnostics,
        }));
    }
    for d in &report.diagnostics {
        eprintln!("{d}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    const BAD_SPEC: &str = r#"
diagram "Sys" {
    block "A" {
        quantity = 1
        min_quantity = 2
        mtbf = 10000 h
    }
}
"#;

    #[test]
    fn lint_rejects_bad_spec_with_lint_error() {
        let path = write_temp("rascad_lint_bad.rascad", BAD_SPEC);
        let err = lint(&[path.to_str().unwrap()]).unwrap_err();
        match &err {
            CliError::Lint(report) => {
                assert!(report.contains("RAS006"), "{report}");
                // Source positions resolved: block A declared on line 3.
                assert!(report.contains(":3:"), "{report}");
            }
            other => panic!("expected Lint error, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_accepts_clean_spec() {
        let spec = rascad_library::e10000::e10000();
        let path = write_temp("rascad_lint_ok.rascad", &spec.to_dsl());
        let out = lint(&[path.to_str().unwrap()]).unwrap();
        assert!(out.ends_with("info(s)\n") || out == "no findings\n", "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_format_emits_summary_line() {
        let spec = rascad_library::e10000::e10000();
        let path = write_temp("rascad_lint_json.rascad", &spec.to_dsl());
        let out = lint(&[path.to_str().unwrap(), "--format", "json"]).unwrap();
        let last = out.lines().last().unwrap();
        assert!(last.starts_with("{\"type\":\"summary\""), "{last}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deny_warnings_blocks_warning_findings() {
        // MTTR of 2 h against an MTBF of 1 h: RAS017, warning.
        let text = r#"
diagram "Sys" {
    block "A" {
        quantity = 1
        min_quantity = 1
        mtbf = 1 h
        mttr_diagnosis = 120 min
    }
}
"#;
        let path = write_temp("rascad_lint_warn.rascad", text);
        let p = path.to_str().unwrap();
        // Warnings alone do not block by default...
        assert!(lint(&[p]).is_ok());
        // ...but do under --deny warnings.
        let err = lint(&[p, "--deny", "warnings"]).unwrap_err();
        assert_eq!(err.exit_code(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_prints_catalog_entry() {
        let out = lint(&["--explain", "RAS006"]).unwrap();
        assert!(out.contains("RAS006") && out.contains("remedy"));
        assert!(lint(&["--explain", "RAS999"]).is_err());
    }

    #[test]
    fn bad_arguments_are_usage_errors() {
        assert!(matches!(lint(&["--format", "xml"]), Err(CliError::Usage(_))));
        assert!(matches!(lint(&["--deny", "errors"]), Err(CliError::Usage(_))));
        assert!(matches!(lint(&[]), Err(CliError::Usage(_))));
        assert!(matches!(lint(&["--max-cut-order", "0"]), Err(CliError::Usage(_))));
        assert!(matches!(lint(&["--max-cut-order", "many"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn tier_c_reports_structural_findings_with_positions() {
        // "Database" is the SPOF; declared on line 8, name at column 11.
        let text = r#"
diagram "Shop" {
    block "Web" {
        quantity = 2
        min_quantity = 1
        mtbf = 50000 h
    }
    block "Database" {
        quantity = 1
        min_quantity = 1
        mtbf = 80000 h
    }
}
"#;
        let path = write_temp("rascad_lint_tier_c.rascad", text);
        let out = lint(&[path.to_str().unwrap(), "--tier-c", "--format", "json"]).unwrap();
        let ras201 = out
            .lines()
            .find(|l| l.contains("\"code\":\"RAS201\""))
            .unwrap_or_else(|| panic!("no RAS201 in {out}"));
        assert!(ras201.contains("\"path\":\"Shop/Database\""), "{ras201}");
        assert!(ras201.contains("\"line\":8"), "{ras201}");
        assert!(ras201.contains("\"column\":11"), "{ras201}");
        for code in ["RAS203", "RAS204", "RAS205"] {
            assert!(out.contains(&format!("\"code\":\"{code}\"")), "no {code} in {out}");
        }
        // Info findings never block, even under --deny warnings.
        assert!(lint(&[path.to_str().unwrap(), "--tier-c", "--deny", "warnings"]).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn max_cut_order_controls_idle_redundancy() {
        // Margin 5 on "Farm": invisible at order 4, a RAS202 finding.
        let text = r#"
diagram "Grid" {
    block "Farm" {
        quantity = 6
        min_quantity = 1
        mtbf = 30000 h
    }
    block "Meter" {
        quantity = 1
        min_quantity = 1
        mtbf = 90000 h
    }
}
"#;
        let path = write_temp("rascad_lint_cut_order.rascad", text);
        let p = path.to_str().unwrap();
        let out = lint(&[p, "--tier-c", "--format", "json"]).unwrap();
        assert!(out.contains("\"code\":\"RAS202\""), "{out}");
        let out = lint(&[p, "--tier-c", "--max-cut-order", "6", "--format", "json"]).unwrap();
        assert!(!out.contains("\"code\":\"RAS202\""), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tier_a_errors_emit_explicit_skip_note() {
        let path = write_temp("rascad_lint_skip.rascad", BAD_SPEC);
        let err = lint(&[path.to_str().unwrap(), "--tier-c", "--format", "json"]).unwrap_err();
        match &err {
            CliError::Lint(report) => {
                assert!(report.contains("\"code\":\"RAS199\""), "{report}");
                assert!(report.contains("Tier B/C skipped"), "{report}");
            }
            other => panic!("expected Lint error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sarif_format_names_the_artifact() {
        let spec = rascad_library::e10000::e10000();
        let path = write_temp("rascad_lint_sarif.rascad", &spec.to_dsl());
        let out = lint(&[path.to_str().unwrap(), "--tier-c", "--format", "sarif"]).unwrap();
        assert!(out.contains("\"version\":\"2.1.0\""), "{out}");
        assert!(out.contains("\"name\":\"rascad-lint\""), "{out}");
        assert!(out.contains("rascad_lint_sarif.rascad"), "{out}");
        assert!(out.contains("\"ruleId\":\"RAS201\""), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gate_rejects_invalid_spec_with_all_diagnostics() {
        let spec = rascad_spec::SystemSpec::from_dsl(BAD_SPEC).unwrap();
        let err = tier_a_gate(&spec).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        match err {
            CliError::Spec(rascad_spec::SpecError::Invalid { diagnostics }) => {
                assert!(diagnostics.iter().any(|d| d.code == "RAS006"));
            }
            other => panic!("expected Spec(Invalid), got {other:?}"),
        }
    }
}
