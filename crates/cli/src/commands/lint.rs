//! `rascad lint` — run the static analyzer on a specification.
//!
//! Tier A (spec analyses) always runs; Tier B (generated-model
//! analyses) runs when Tier A found no errors, since generating models
//! from an erroneous spec would either fail or analyze garbage.
//! Findings print as a human table or JSON lines; blocking findings
//! (errors, or warnings under `--deny warnings`) exit with code 7.

use rascad_lint::{lint_spec, render, tier_b, DenyLevel, LintReport};

use super::CliError;

/// Output format for the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

/// Parsed `lint` arguments.
struct LintArgs<'a> {
    spec: Option<&'a str>,
    format: Format,
    deny: DenyLevel,
    tier_b: bool,
    explain: Option<&'a str>,
}

fn parse_args<'a>(args: &[&'a str]) -> Result<LintArgs<'a>, CliError> {
    let mut parsed = LintArgs {
        spec: None,
        format: Format::Human,
        deny: DenyLevel::Errors,
        tier_b: true,
        explain: None,
    };
    let mut it = args.iter().copied();
    while let Some(a) = it.next() {
        match a {
            "--format" => {
                parsed.format = match it.next() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    other => {
                        return Err(CliError::usage(format!(
                            "--format needs `human` or `json`, got `{}`",
                            other.unwrap_or("nothing")
                        )));
                    }
                };
            }
            "--deny" => match it.next() {
                Some("warnings") => parsed.deny = DenyLevel::Warnings,
                other => {
                    return Err(CliError::usage(format!(
                        "--deny supports `warnings`, got `{}`",
                        other.unwrap_or("nothing")
                    )));
                }
            },
            "--no-tier-b" => parsed.tier_b = false,
            "--explain" => {
                parsed.explain = Some(
                    it.next().ok_or_else(|| CliError::usage("--explain needs a RASxxx code"))?,
                );
            }
            other if parsed.spec.is_none() && !other.starts_with("--") => {
                parsed.spec = Some(other);
            }
            other => {
                return Err(CliError::usage(format!("unknown lint argument `{other}`")));
            }
        }
    }
    Ok(parsed)
}

/// Runs the `lint` subcommand.
pub fn lint(args: &[&str]) -> Result<String, CliError> {
    let parsed = parse_args(args)?;
    if let Some(code) = parsed.explain {
        let entry = rascad_lint::catalog::lookup(code).ok_or_else(|| {
            CliError::usage(format!("unknown diagnostic code `{code}`; codes are RAS001–RAS105"))
        })?;
        return Ok(rascad_lint::catalog::explain(entry));
    }

    let path =
        parsed.spec.ok_or_else(|| CliError::usage("lint needs a spec file argument (or `-`)"))?;
    let (spec, source) = load_with_source(path)?;

    let mut report = lint_spec(&spec);
    if let Some(src) = &source {
        rascad_spec::dsl::source_map::annotate(&mut report.diagnostics, src);
    }
    if parsed.tier_b && !report.has_errors() {
        run_tier_b(&spec, &mut report);
    }

    let rendered = match parsed.format {
        Format::Human => render::render_human(&report),
        Format::Json => render::render_json(&report),
    };
    if report.is_blocking(parsed.deny) {
        Err(CliError::Lint(rendered))
    } else {
        Ok(rendered)
    }
}

/// Loads a spec, keeping the DSL source text for position annotation.
/// `-` reads the DSL from stdin.
fn load_with_source(path: &str) -> Result<(rascad_spec::SystemSpec, Option<String>), CliError> {
    if path == "-" {
        let mut text = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
            .map_err(|source| CliError::Io { path: "<stdin>".to_string(), source })?;
        let spec = rascad_spec::SystemSpec::from_dsl(&text)?;
        return Ok((spec, Some(text)));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|source| CliError::Io { path: path.to_string(), source })?;
    if path.ends_with(".json") {
        Ok((rascad_spec::SystemSpec::from_json(&text)?, None))
    } else {
        let spec = rascad_spec::SystemSpec::from_dsl(&text)?;
        Ok((spec, Some(text)))
    }
}

/// Generates every block's chain and runs the Tier B analyses.
fn run_tier_b(spec: &rascad_spec::SystemSpec, report: &mut LintReport) {
    let mut diags = Vec::new();
    spec.root.walk(&mut |_, path, block| {
        // Blocks that fail generation are a solver concern, not a lint
        // finding; `solve` reports them with full context.
        if let Ok(m) = rascad_core::generate_block(&block.params, &spec.globals) {
            diags.extend(tier_b::analyze_chain(path, &m.chain));
        }
    });
    report.extend(diags);
}

/// Tier A gate run before `solve`/`sweep`/`simulate` (unless
/// `--no-lint`): warnings and notes go to stderr, errors abort with
/// every diagnostic attached.
pub fn tier_a_gate(spec: &rascad_spec::SystemSpec) -> Result<(), CliError> {
    let report = lint_spec(spec);
    if report.has_errors() {
        return Err(CliError::Spec(rascad_spec::SpecError::Invalid {
            diagnostics: report.diagnostics,
        }));
    }
    for d in &report.diagnostics {
        eprintln!("{d}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    const BAD_SPEC: &str = r#"
diagram "Sys" {
    block "A" {
        quantity = 1
        min_quantity = 2
        mtbf = 10000 h
    }
}
"#;

    #[test]
    fn lint_rejects_bad_spec_with_lint_error() {
        let path = write_temp("rascad_lint_bad.rascad", BAD_SPEC);
        let err = lint(&[path.to_str().unwrap()]).unwrap_err();
        match &err {
            CliError::Lint(report) => {
                assert!(report.contains("RAS006"), "{report}");
                // Source positions resolved: block A declared on line 3.
                assert!(report.contains(":3:"), "{report}");
            }
            other => panic!("expected Lint error, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_accepts_clean_spec() {
        let spec = rascad_library::e10000::e10000();
        let path = write_temp("rascad_lint_ok.rascad", &spec.to_dsl());
        let out = lint(&[path.to_str().unwrap()]).unwrap();
        assert!(out.ends_with("info(s)\n") || out == "no findings\n", "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_format_emits_summary_line() {
        let spec = rascad_library::e10000::e10000();
        let path = write_temp("rascad_lint_json.rascad", &spec.to_dsl());
        let out = lint(&[path.to_str().unwrap(), "--format", "json"]).unwrap();
        let last = out.lines().last().unwrap();
        assert!(last.starts_with("{\"type\":\"summary\""), "{last}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deny_warnings_blocks_warning_findings() {
        // MTTR of 2 h against an MTBF of 1 h: RAS017, warning.
        let text = r#"
diagram "Sys" {
    block "A" {
        quantity = 1
        min_quantity = 1
        mtbf = 1 h
        mttr_diagnosis = 120 min
    }
}
"#;
        let path = write_temp("rascad_lint_warn.rascad", text);
        let p = path.to_str().unwrap();
        // Warnings alone do not block by default...
        assert!(lint(&[p]).is_ok());
        // ...but do under --deny warnings.
        let err = lint(&[p, "--deny", "warnings"]).unwrap_err();
        assert_eq!(err.exit_code(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explain_prints_catalog_entry() {
        let out = lint(&["--explain", "RAS006"]).unwrap();
        assert!(out.contains("RAS006") && out.contains("remedy"));
        assert!(lint(&["--explain", "RAS999"]).is_err());
    }

    #[test]
    fn bad_arguments_are_usage_errors() {
        assert!(matches!(lint(&["--format", "xml"]), Err(CliError::Usage(_))));
        assert!(matches!(lint(&["--deny", "errors"]), Err(CliError::Usage(_))));
        assert!(matches!(lint(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn gate_rejects_invalid_spec_with_all_diagnostics() {
        let spec = rascad_spec::SystemSpec::from_dsl(BAD_SPEC).unwrap();
        let err = tier_a_gate(&spec).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        match err {
            CliError::Spec(rascad_spec::SpecError::Invalid { diagnostics }) => {
                assert!(diagnostics.iter().any(|d| d.code == "RAS006"));
            }
            other => panic!("expected Spec(Invalid), got {other:?}"),
        }
    }
}
