//! Brute-force validation of exact lumping against the full product
//! space.
//!
//! For every `n <= 8` and every `k <= n`, the `2^n`-state chain of `n`
//! identical units is solved directly and through the occupancy lump
//! (`2^n -> n + 1` states). Exact (ordinary) lumpability guarantees the
//! aggregated stationary vectors agree; these tests pin that agreement
//! to 1e-9 across every class, availability included, and check that
//! the automatic partition refinement discovers the same collapse.

use rascad_markov::{
    coarsest_exact_partition, identical_units_product, lump, occupancy_partition, SteadyStateMethod,
};

const LAMBDA: f64 = 1.0 / 20_000.0;
const MU: f64 = 1.0 / 5.0;

/// Reward-weighted stationary probability (availability).
fn availability(pi: &[f64], rewards: impl Iterator<Item = f64>) -> f64 {
    pi.iter().zip(rewards).map(|(p, r)| p * r).sum()
}

#[test]
fn lumped_chain_matches_product_space_for_all_small_n_and_k() {
    for n in 1..=8u32 {
        for k in 0..=n {
            let full = identical_units_product(n, k, LAMBDA, MU).unwrap();
            let partition = occupancy_partition(n).unwrap();
            let small = lump(&full, &partition).unwrap();
            assert_eq!(small.len(), n as usize + 1, "n={n}");

            let pi_full = full.steady_state(SteadyStateMethod::Gth).unwrap();
            let pi_small = small.steady_state(SteadyStateMethod::Gth).unwrap();

            // Classwise stationary mass agrees.
            let aggregated = partition.aggregate(&pi_full);
            for (j, (a, b)) in aggregated.iter().zip(&pi_small).enumerate() {
                assert!((a - b).abs() <= 1e-9, "n={n} k={k} class {j}: {a} vs {b}");
            }

            // Availability agrees between the spaces.
            let a_full = availability(&pi_full, full.states().iter().map(|s| s.reward));
            let a_small = availability(&pi_small, small.states().iter().map(|s| s.reward));
            assert!(
                (a_full - a_small).abs() <= 1e-9,
                "n={n} k={k}: availability {a_full} vs {a_small}"
            );
        }
    }
}

#[test]
fn refinement_discovers_the_occupancy_partition() {
    // The coarsest exact partition of the symmetric product chain is
    // precisely the popcount grouping: no coarser class is reward- and
    // flow-compatible, and symmetry makes nothing finer necessary.
    for n in 1..=6u32 {
        let full = identical_units_product(n, 1, LAMBDA, MU).unwrap();
        let found = coarsest_exact_partition(&full);
        let expected = occupancy_partition(n).unwrap();
        assert_eq!(found.len(), expected.len(), "n={n}");
        // Class numberings may differ; compare as a relabelling.
        let mut map = vec![usize::MAX; found.len()];
        for s in 0..full.len() {
            let (f, e) = (found.class_of(s), expected.class_of(s));
            if map[f] == usize::MAX {
                map[f] = e;
            }
            assert_eq!(map[f], e, "n={n} state {s}: partitions disagree");
        }
    }
}

#[test]
fn lumping_then_solving_beats_the_full_space_at_n_eight() {
    // Not a benchmark, just a sanity check that the lumped path stays
    // exact at the largest brute-force size: 256 -> 9 states.
    let full = identical_units_product(8, 6, LAMBDA, MU).unwrap();
    let partition = occupancy_partition(8).unwrap();
    let small = lump(&full, &partition).unwrap();
    assert_eq!((full.len(), small.len()), (256, 9));
    let pi_full = full.steady_state(SteadyStateMethod::Gth).unwrap();
    let pi_small = small.steady_state(SteadyStateMethod::Gth).unwrap();
    let agg = partition.aggregate(&pi_full);
    let worst = agg.iter().zip(&pi_small).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(worst <= 1e-9, "worst classwise deviation {worst:.2e}");
}
