//! Property-based tests; compiled only with the `proptest-tests`
//! feature, which requires the real `proptest` crate (the offline
//! build vendors an empty placeholder — see vendor/README.md).
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the Markov substrate.

use proptest::prelude::*;
use rascad_markov::transient::{self, TransientOptions};
use rascad_markov::{Ctmc, CtmcBuilder, SteadyStateMethod};

/// Builds a random irreducible chain: a ring (guaranteeing
/// irreducibility) plus arbitrary extra edges.
fn arb_chain() -> impl Strategy<Value = Ctmc> {
    (2usize..8).prop_flat_map(|n| {
        let ring = proptest::collection::vec(1e-3..10.0f64, n);
        let extra = proptest::collection::vec((0..n, 0..n, 1e-3..10.0f64), 0..12);
        let rewards = proptest::collection::vec(prop_oneof![Just(0.0), Just(1.0)], n);
        (Just(n), ring, extra, rewards).prop_map(|(n, ring, extra, rewards)| {
            let mut b = CtmcBuilder::new();
            for (i, r) in rewards.iter().enumerate() {
                b.add_state(format!("s{i}"), *r);
            }
            for (i, &rate) in ring.iter().enumerate() {
                b.add_transition(i, (i + 1) % n, rate);
            }
            for &(f, t, rate) in &extra {
                if f != t {
                    b.add_transition(f, t, rate);
                }
            }
            b.build().expect("constructed chain is valid")
        })
    })
}

proptest! {
    /// The stationary vector is a distribution and satisfies pi*Q = 0.
    #[test]
    fn stationary_solves_balance_equations(chain in arb_chain()) {
        let pi = chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-10);
        for &p in &pi {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p));
        }
        let residual = chain.generator().vec_mul(&pi);
        for r in residual {
            prop_assert!(r.abs() < 1e-9, "residual {r}");
        }
    }

    /// GTH and LU agree to high precision.
    #[test]
    fn gth_and_lu_agree(chain in arb_chain()) {
        let g = chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let l = chain.steady_state(SteadyStateMethod::Lu).unwrap();
        for (a, b) in g.iter().zip(&l) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    /// Transient probabilities stay a distribution and converge to the
    /// stationary distribution for large t.
    #[test]
    fn transient_is_distribution_and_converges(chain in arb_chain(), t in 0.0..20.0f64) {
        let n = chain.len();
        let mut p0 = vec![0.0; n];
        p0[0] = 1.0;
        let sol = transient::solve(&chain, &p0, t, TransientOptions::default()).unwrap();
        let sum: f64 = sol.probabilities.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(sol.point_reward >= -1e-12 && sol.point_reward <= 1.0 + 1e-12);
        prop_assert!(sol.interval_reward >= -1e-12 && sol.interval_reward <= 1.0 + 1e-12);

        // Long-run convergence.
        let pi = chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let far = transient::solve(&chain, &p0, 5000.0, TransientOptions::default()).unwrap();
        for (a, b) in far.probabilities.iter().zip(&pi) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// Availability equals 1 minus the stationary mass of down states.
    #[test]
    fn availability_complement(chain in arb_chain()) {
        let pi = chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let a = chain.expected_reward(&pi);
        let down: f64 = chain.down_states().iter().map(|&s| pi[s]).sum();
        prop_assert!((a + down - 1.0).abs() < 1e-10);
    }

    /// Failure flow equals recovery flow in steady state.
    #[test]
    fn flows_balance(chain in arb_chain()) {
        let pi = chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let f = chain.failure_rate(&pi);
        let r = chain.recovery_rate(&pi);
        prop_assert!((f - r).abs() < 1e-9 * (1.0 + f.abs()), "{f} vs {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniformized DTMC rows sum to one.
    #[test]
    fn uniformized_rows_sum_to_one(chain in arb_chain()) {
        let uni = transient::uniformize(&chain);
        for s in uni.dtmc.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-12);
        }
    }

    /// Power iteration agrees with GTH on every random chain.
    #[test]
    fn power_iteration_agrees_with_gth(chain in arb_chain()) {
        let gth = chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let pow = chain.steady_state(SteadyStateMethod::Power).unwrap();
        for (a, b) in gth.iter().zip(&pow) {
            prop_assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    /// DTMC stationary vectors are distributions satisfying pi P = pi.
    #[test]
    fn dtmc_stationary_is_fixed_point(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.05..1.0f64, 3),
            3,
        )
    ) {
        use rascad_markov::DtmcBuilder;
        let mut b = DtmcBuilder::new();
        for i in 0..3 {
            b.add_state(format!("s{i}"));
        }
        for (i, row) in rows.iter().enumerate() {
            let z: f64 = row.iter().sum();
            for (j, &w) in row.iter().enumerate() {
                b.add_transition(i, j, w / z);
            }
        }
        let c = b.build().unwrap();
        let pi = c.stationary().unwrap();
        let sum: f64 = pi.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-10);
        // pi P = pi.
        for j in 0..3 {
            let flow: f64 = (0..3).map(|i| pi[i] * c.probability(i, j)).sum();
            prop_assert!((flow - pi[j]).abs() < 1e-9);
        }
    }

    /// Erlang phase expansion of a random semi-Markov process preserves
    /// steady-state availability exactly.
    #[test]
    fn erlang_expansion_preserves_availability(
        rates in proptest::collection::vec(0.01..10.0f64, 2..5),
        dets in proptest::collection::vec(0.1..10.0f64, 2..5),
        phases in 1u32..12,
    ) {
        use rascad_markov::{SemiMarkovBuilder, SojournDistribution};
        let n = rates.len().min(dets.len());
        prop_assume!(n >= 2);
        let mut b = SemiMarkovBuilder::new();
        for i in 0..n {
            // Alternate exponential and deterministic sojourns.
            let sojourn = if i % 2 == 0 {
                SojournDistribution::Exponential { rate: rates[i] }
            } else {
                SojournDistribution::Deterministic { value: dets[i] }
            };
            b.add_state(format!("s{i}"), (i % 2) as f64, sojourn);
        }
        for i in 0..n {
            b.add_jump(i, (i + 1) % n, 1.0);
        }
        let smp = b.build().unwrap();
        let expect = smp.availability().unwrap();
        let ctmc = smp.to_ctmc_erlang(phases).unwrap();
        let pi = ctmc.steady_state(SteadyStateMethod::Gth).unwrap();
        let got = ctmc.expected_reward(&pi);
        prop_assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }
}
