//! Discrete-time Markov chains.
//!
//! The embedded chain of every semi-Markov process is a DTMC, and some
//! GMB workflows (inspection cycles, per-demand failure models) are
//! naturally discrete. This module gives DTMCs the same first-class
//! treatment the CTMC side has: stationary distribution (via GTH on
//! `P − I`), n-step transients, and absorbing-chain analysis (expected
//! steps to absorption and absorption probabilities).

use crate::dense::DenseMatrix;
use crate::error::MarkovError;
use crate::gth;

/// A validated discrete-time Markov chain.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dtmc {
    labels: Vec<String>,
    /// Row-stochastic transition matrix.
    matrix: DenseMatrix,
}

/// Builds a [`Dtmc`] incrementally.
#[derive(Debug, Clone, Default)]
pub struct DtmcBuilder {
    labels: Vec<String>,
    transitions: Vec<(usize, usize, f64)>,
}

impl DtmcBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state; returns its id.
    pub fn add_state(&mut self, label: impl Into<String>) -> usize {
        self.labels.push(label.into());
        self.labels.len() - 1
    }

    /// Adds a transition probability (duplicates accumulate).
    pub fn add_transition(&mut self, from: usize, to: usize, probability: f64) -> &mut Self {
        self.transitions.push((from, to, probability));
        self
    }

    /// Validates and finalizes: every row must sum to 1 (a state with
    /// no outgoing probability gets an implicit self-loop, making it
    /// absorbing).
    ///
    /// # Errors
    ///
    /// * [`MarkovError::EmptyChain`] with no states.
    /// * [`MarkovError::UnknownState`] for bad endpoints.
    /// * [`MarkovError::InvalidProbability`] for entries outside
    ///   `[0, 1]` or rows not summing to 1.
    pub fn build(&self) -> Result<Dtmc, MarkovError> {
        let n = self.labels.len();
        if n == 0 {
            return Err(MarkovError::EmptyChain);
        }
        let mut m = DenseMatrix::zeros(n, n);
        for &(f, t, p) in &self.transitions {
            if f >= n {
                return Err(MarkovError::UnknownState { id: f, len: n });
            }
            if t >= n {
                return Err(MarkovError::UnknownState { id: t, len: n });
            }
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(MarkovError::InvalidProbability {
                    what: format!("transition {f}->{t} probability {p}"),
                });
            }
            m[(f, t)] += p;
        }
        for i in 0..n {
            let sum: f64 = m.row(i).iter().sum();
            if sum == 0.0 {
                m[(i, i)] = 1.0; // absorbing
            } else if (sum - 1.0).abs() > 1e-9 {
                return Err(MarkovError::InvalidProbability {
                    what: format!("row {i} sums to {sum}"),
                });
            }
        }
        Ok(Dtmc { labels: self.labels.clone(), matrix: m })
    }
}

impl Dtmc {
    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no states (never true for a built chain).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// State labels in id order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Transition probability from `i` to `j`.
    #[must_use]
    pub fn probability(&self, i: usize, j: usize) -> f64 {
        self.matrix[(i, j)]
    }

    /// Ids of absorbing states (`p_ii = 1`).
    #[must_use]
    #[allow(clippy::float_cmp)] // absorbing rows carry an exact 1.0
    pub fn absorbing_states(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.matrix[(i, i)] == 1.0).collect()
    }

    /// Stationary distribution (unique for irreducible aperiodic
    /// chains), computed subtraction-free via GTH on `P − I`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Singular`] for chains without a unique
    /// stationary vector (e.g. with absorbing states plus transients).
    pub fn stationary(&self) -> Result<Vec<f64>, MarkovError> {
        let n = self.len();
        if n == 1 {
            return Ok(vec![1.0]);
        }
        let mut q = self.matrix.clone();
        for i in 0..n {
            q[(i, i)] -= 1.0;
        }
        gth::stationary_gth_dense(&q)
    }

    /// Distribution after `steps` steps from `p0`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidProbability`] if `p0` is not a
    /// distribution over the state space.
    pub fn step_distribution(&self, p0: &[f64], steps: usize) -> Result<Vec<f64>, MarkovError> {
        if p0.len() != self.len() {
            return Err(MarkovError::InvalidProbability {
                what: format!("initial vector has {} entries, chain has {}", p0.len(), self.len()),
            });
        }
        let sum: f64 = p0.iter().sum();
        if (sum - 1.0).abs() > 1e-9 || p0.iter().any(|&x| !(0.0..=1.0 + 1e-12).contains(&x)) {
            return Err(MarkovError::InvalidProbability { what: format!("sum {sum}") });
        }
        let mut p = p0.to_vec();
        for _ in 0..steps {
            p = self.matrix.vec_mul(&p);
        }
        Ok(p)
    }

    /// Expected number of steps to absorption from each transient
    /// state: solves `(I − T) m = 1` over the transient block.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::MissingStates`] if there are no absorbing or no
    ///   transient states.
    /// * [`MarkovError::Singular`] if a transient state cannot reach any
    ///   absorbing state.
    pub fn expected_steps_to_absorption(&self) -> Result<Vec<(usize, f64)>, MarkovError> {
        let absorbing: std::collections::HashSet<usize> =
            self.absorbing_states().into_iter().collect();
        if absorbing.is_empty() {
            return Err(MarkovError::MissingStates { what: "no absorbing states".into() });
        }
        let transient: Vec<usize> = (0..self.len()).filter(|i| !absorbing.contains(i)).collect();
        if transient.is_empty() {
            return Err(MarkovError::MissingStates { what: "no transient states".into() });
        }
        let nt = transient.len();
        let mut a = DenseMatrix::zeros(nt, nt); // I - T
        for (ri, &i) in transient.iter().enumerate() {
            for (rj, &j) in transient.iter().enumerate() {
                a[(ri, rj)] = if ri == rj { 1.0 } else { 0.0 } - self.matrix[(i, j)];
            }
        }
        let ones = vec![1.0; nt];
        let m = a.solve(&ones)?;
        Ok(transient.into_iter().zip(m).collect())
    }

    /// Probability of being absorbed in each absorbing state, starting
    /// from `start`.
    ///
    /// # Errors
    ///
    /// As for [`expected_steps_to_absorption`](Self::expected_steps_to_absorption),
    /// plus [`MarkovError::MissingStates`] if `start` is absorbing.
    pub fn absorption_probabilities(&self, start: usize) -> Result<Vec<(usize, f64)>, MarkovError> {
        let absorbing: Vec<usize> = self.absorbing_states();
        if absorbing.is_empty() {
            return Err(MarkovError::MissingStates { what: "no absorbing states".into() });
        }
        let abs_set: std::collections::HashSet<usize> = absorbing.iter().copied().collect();
        let transient: Vec<usize> = (0..self.len()).filter(|i| !abs_set.contains(i)).collect();
        let Some(start_pos) = transient.iter().position(|&s| s == start) else {
            return Err(MarkovError::MissingStates {
                what: format!("start state {start} is absorbing or out of range"),
            });
        };
        let nt = transient.len();
        let mut a = DenseMatrix::zeros(nt, nt);
        for (ri, &i) in transient.iter().enumerate() {
            for (rj, &j) in transient.iter().enumerate() {
                a[(ri, rj)] = if ri == rj { 1.0 } else { 0.0 } - self.matrix[(i, j)];
            }
        }
        let mut out = Vec::with_capacity(absorbing.len());
        for &d in &absorbing {
            let b: Vec<f64> = transient.iter().map(|&i| self.matrix[(i, d)]).collect();
            let x = a.solve(&b)?;
            out.push((d, x[start_pos].clamp(0.0, 1.0)));
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    fn weather() -> Dtmc {
        // Sunny/rainy toy chain.
        let mut b = DtmcBuilder::new();
        let s = b.add_state("sunny");
        let r = b.add_state("rainy");
        b.add_transition(s, s, 0.9);
        b.add_transition(s, r, 0.1);
        b.add_transition(r, s, 0.5);
        b.add_transition(r, r, 0.5);
        b.build().unwrap()
    }

    #[test]
    fn stationary_closed_form() {
        let c = weather();
        let pi = c.stationary().unwrap();
        // pi_sunny = 5/6.
        assert!((pi[0] - 5.0 / 6.0).abs() < 1e-12);
        assert!((pi[1] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn step_distribution_converges() {
        let c = weather();
        let p = c.step_distribution(&[0.0, 1.0], 200).unwrap();
        let pi = c.stationary().unwrap();
        for (a, b) in p.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-10);
        }
        // Zero steps = identity.
        assert_eq!(c.step_distribution(&[0.0, 1.0], 0).unwrap(), vec![0.0, 1.0]);
        assert!(c.step_distribution(&[0.5, 0.4], 1).is_err());
        assert!(c.step_distribution(&[1.0], 1).is_err());
    }

    #[test]
    fn gamblers_ruin_absorption() {
        // States 0..=3; 0 and 3 absorbing; fair coin from 1 and 2.
        let mut b = DtmcBuilder::new();
        for i in 0..4 {
            b.add_state(format!("n{i}"));
        }
        for i in 1..3usize {
            b.add_transition(i, i - 1, 0.5);
            b.add_transition(i, i + 1, 0.5);
        }
        let c = b.build().unwrap();
        assert_eq!(c.absorbing_states(), vec![0, 3]);

        // From state 1: P(ruin) = 2/3, P(win) = 1/3; expected steps = 2.
        let probs = c.absorption_probabilities(1).unwrap();
        let map: std::collections::HashMap<_, _> = probs.into_iter().collect();
        assert!((map[&0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((map[&3] - 1.0 / 3.0).abs() < 1e-12);
        let steps = c.expected_steps_to_absorption().unwrap();
        let map: std::collections::HashMap<_, _> = steps.into_iter().collect();
        assert!((map[&1] - 2.0).abs() < 1e-12);
        assert!((map[&2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn implicit_self_loop_makes_absorbing() {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let dead = b.add_state("dead");
        b.add_transition(a, dead, 1.0);
        let c = b.build().unwrap();
        assert_eq!(c.absorbing_states(), vec![dead]);
        assert_eq!(c.probability(dead, dead), 1.0);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(DtmcBuilder::new().build(), Err(MarkovError::EmptyChain)));
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        b.add_transition(a, 9, 0.5);
        assert!(matches!(b.build(), Err(MarkovError::UnknownState { .. })));
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        b.add_state("b");
        b.add_transition(a, a, 0.7); // row sums to 0.7
        assert!(matches!(b.build(), Err(MarkovError::InvalidProbability { .. })));
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        b.add_transition(a, a, 1.5);
        assert!(matches!(b.build(), Err(MarkovError::InvalidProbability { .. })));
    }

    #[test]
    fn absorption_from_absorbing_start_rejected() {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let dead = b.add_state("dead");
        b.add_transition(a, dead, 1.0);
        let c = b.build().unwrap();
        assert!(c.absorption_probabilities(dead).is_err());
    }

    #[test]
    fn no_absorbing_states_rejected() {
        let c = weather();
        assert!(matches!(c.expected_steps_to_absorption(), Err(MarkovError::MissingStates { .. })));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let c = weather();
        let json = serde_json::to_string(&c).unwrap();
        let back: Dtmc = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
