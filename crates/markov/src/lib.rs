//! Continuous-time Markov chain (CTMC), Markov-reward, and semi-Markov
//! substrate for the RAScad reproduction.
//!
//! RAScad translates an engineering specification into a hierarchy of
//! reliability block diagrams and Markov chains and then solves those
//! chains numerically (Section 4 of the paper). This crate is the
//! numerical engine: it owns the chain representation and every solver
//! the tool needs.
//!
//! # Contents
//!
//! * [`Ctmc`] — a labelled continuous-time Markov chain with per-state
//!   reward rates (1 = up, 0 = down in availability models, but any
//!   non-negative reward is supported).
//! * Steady-state solvers: [`SteadyStateMethod::Gth`] (the
//!   Grassmann–Taksar–Heyman elimination, numerically robust) and
//!   [`SteadyStateMethod::Lu`] (dense LU on the balance equations).
//!   Having two independent paths lets the validation experiments
//!   cross-check results the way the paper cross-checks against SHARPE
//!   and MEADEP.
//! * Transient solver: [`transient`] implements uniformization
//!   (randomization) for state probabilities at time `t`, expected
//!   interval (cumulative-reward) availability over `(0, T)`, and
//!   time-dependent expected reward.
//! * Absorbing-chain analysis: [`absorbing`] computes MTTF, reliability
//!   at a mission time, interval failure rate, and hazard rate — the
//!   reliability measures RAScad reports.
//! * Semi-Markov processes: [`semi`] solves steady-state measures of a
//!   semi-Markov chain through its embedded DTMC and mean sojourn times,
//!   which is how the paper's GMB module supports semi-Markov models.
//! * Sensitivity analysis: [`sensitivity`] differentiates the stationary
//!   distribution with respect to a transition rate, supporting the
//!   tool's parametric analysis capability.
//!
//! # Example
//!
//! A two-state machine with failure rate `λ` and repair rate `μ` has the
//! closed-form availability `μ/(λ+μ)`:
//!
//! ```
//! use rascad_markov::{CtmcBuilder, SteadyStateMethod};
//!
//! # fn main() -> Result<(), rascad_markov::MarkovError> {
//! let mut b = CtmcBuilder::new();
//! let up = b.add_state("up", 1.0);
//! let down = b.add_state("down", 0.0);
//! b.add_transition(up, down, 1e-4); // λ
//! b.add_transition(down, up, 1e-1); // μ
//! let ctmc = b.build()?;
//! let pi = ctmc.steady_state(SteadyStateMethod::Gth)?;
//! let avail = ctmc.expected_reward(&pi);
//! assert!((avail - 1e-1 / (1e-4 + 1e-1)).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// State and iteration counts convert to f64 for metrics and uniform
// initial vectors throughout; chain sizes stay far below 2^52, so the
// pedantic precision-loss lint would only add per-site noise here.
#![allow(clippy::cast_precision_loss)]

pub mod absorbing;
pub mod ctmc;
pub mod dense;
pub mod dtmc;
pub mod error;
pub mod fingerprint;
pub mod gth;
pub mod iterative;
pub mod lump;
pub mod matrix;
pub mod semi;
pub mod sensitivity;
pub mod transient;

pub use absorbing::{AbsorbingAnalysis, ReliabilityCurve};
pub use ctmc::{CancelToken, Ctmc, CtmcBuilder, SolveOptions, StateId, SteadyStateMethod};
pub use dtmc::{Dtmc, DtmcBuilder};
pub use error::{MarkovError, SolveAttempt};
pub use fingerprint::{Fingerprint, StableHasher};
pub use lump::{
    coarsest_exact_partition, identical_units_product, lump, occupancy_partition, Partition,
};
pub use matrix::SparseMatrix;
pub use semi::{SemiMarkov, SemiMarkovBuilder, SojournDistribution};
pub use transient::{TransientOptions, TransientSolution};
