//! Error type shared by every solver in this crate.

use std::fmt;

/// Error returned by chain construction and by the numerical solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// The chain has no states.
    EmptyChain,
    /// A transition referenced a state id that does not exist.
    UnknownState {
        /// The offending state index.
        id: usize,
        /// Number of states in the chain.
        len: usize,
    },
    /// A transition rate was negative, NaN, or infinite.
    InvalidRate {
        /// Source state index of the offending transition.
        from: usize,
        /// Destination state index of the offending transition.
        to: usize,
        /// The offending rate.
        rate: f64,
    },
    /// A reward rate was negative, NaN, or infinite.
    InvalidReward {
        /// State index with the offending reward.
        state: usize,
        /// The offending reward.
        reward: f64,
    },
    /// A self-loop transition was supplied (diagonal entries are derived,
    /// never user-specified).
    SelfLoop {
        /// The offending state index.
        state: usize,
    },
    /// The chain is reducible: the stationary distribution is not unique
    /// (some state cannot reach, or be reached from, the rest).
    Reducible {
        /// A state in the unreachable/absorbing component, if identified.
        state: usize,
    },
    /// The linear system was singular to working precision.
    Singular,
    /// A probability was outside `[0, 1]` or a probability vector did not
    /// sum to 1.
    InvalidProbability {
        /// Human-readable description of what was invalid.
        what: String,
    },
    /// A requested analysis needs at least one state of a kind the chain
    /// does not have (for example MTTF with no absorbing states).
    MissingStates {
        /// Human-readable description of what is missing.
        what: String,
    },
    /// An iterative solver exhausted its iteration budget before
    /// reaching the convergence tolerance.
    NotConverged {
        /// Solver name, e.g. `"power"`.
        method: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual achieved at the last iterate.
        residual: f64,
        /// Convergence tolerance that was requested.
        tolerance: f64,
    },
    /// A solver exceeded its wall-clock budget before finishing.
    Timeout {
        /// Solver name, e.g. `"power"` or `"gth"`.
        method: &'static str,
        /// Iterations (or elimination steps) completed before the
        /// budget expired.
        iterations: usize,
        /// Wall-clock time spent, milliseconds.
        elapsed_ms: u64,
        /// The configured budget, milliseconds.
        budget_ms: u64,
    },
    /// The caller cancelled the solve mid-flight (explicitly or via a
    /// request deadline on its [`crate::ctmc::CancelToken`]). Unlike
    /// [`Timeout`](MarkovError::Timeout), this is not retryable: the
    /// fallback ladder aborts instead of trying the next rung.
    Cancelled {
        /// Solver name, e.g. `"sparse"` or `"power"`.
        method: &'static str,
        /// Iterations (or elimination steps) completed before the
        /// cancellation was observed.
        iterations: usize,
    },
    /// Every rung of the solver fallback ladder failed; carries the
    /// full attempt trail so diagnostics can show why *each* rung
    /// failed, not just the last (see `rascad-core`'s ladder).
    FallbackExhausted {
        /// One record per attempted rung, in attempt order.
        attempts: Vec<SolveAttempt>,
    },
    /// A partition offered for exact lumping violates the lumpability
    /// condition (members of a class disagree on rewards or on their
    /// aggregate rate into some other class).
    NotLumpable {
        /// Human-readable description of the violation.
        what: String,
    },
    /// An option passed to a solver was out of range.
    InvalidOption {
        /// Human-readable description of the bad option.
        what: String,
    },
    /// A matrix (or matrix/vector pair) had incompatible dimensions,
    /// e.g. a non-square generator passed to an elimination solver.
    DimensionMismatch {
        /// Human-readable description of the mismatched shapes.
        what: String,
    },
}

/// One failed rung of the solver fallback ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveAttempt {
    /// Rung name: `"power"`, `"lu"`, or `"gth"`.
    pub method: &'static str,
    /// Iterations performed, when the rung is iterative (or timed out
    /// mid-iteration); `None` for direct methods.
    pub iterations: Option<usize>,
    /// Residual at the point of failure, when the rung reports one.
    pub residual: Option<f64>,
    /// The rung's underlying error.
    pub error: Box<MarkovError>,
}

impl fmt::Display for SolveAttempt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.method)?;
        if let Some(i) = self.iterations {
            write!(f, " after {i} iterations")?;
        }
        if let Some(r) = self.residual {
            write!(f, " (residual {r:.3e})")?;
        }
        write!(f, ": {}", self.error)
    }
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::EmptyChain => write!(f, "chain has no states"),
            MarkovError::UnknownState { id, len } => {
                write!(f, "state id {id} out of range for chain with {len} states")
            }
            MarkovError::InvalidRate { from, to, rate } => {
                write!(f, "invalid rate {rate} on transition {from} -> {to}")
            }
            MarkovError::InvalidReward { state, reward } => {
                write!(f, "invalid reward {reward} on state {state}")
            }
            MarkovError::SelfLoop { state } => {
                write!(f, "self-loop transition on state {state}")
            }
            MarkovError::Reducible { state } => {
                write!(f, "chain is reducible (state {state} splits it)")
            }
            MarkovError::Singular => write!(f, "linear system is singular"),
            MarkovError::InvalidProbability { what } => {
                write!(f, "invalid probability: {what}")
            }
            MarkovError::MissingStates { what } => write!(f, "missing states: {what}"),
            MarkovError::NotConverged { method, iterations, residual, tolerance } => write!(
                f,
                "{method} iteration did not converge: residual {residual:.3e} after \
                 {iterations} iterations (tolerance {tolerance:.1e}; chain too stiff — use GTH)"
            ),
            MarkovError::Timeout { method, iterations, elapsed_ms, budget_ms } => write!(
                f,
                "{method} solve exceeded its wall-clock budget: {elapsed_ms} ms spent \
                 ({iterations} iterations) against a budget of {budget_ms} ms"
            ),
            MarkovError::Cancelled { method, iterations } => {
                write!(f, "{method} solve cancelled by the caller after {iterations} iterations")
            }
            MarkovError::FallbackExhausted { attempts } => {
                write!(f, "solver fallback ladder exhausted after {} rung(s)", attempts.len())?;
                for a in attempts {
                    write!(f, "; {a}")?;
                }
                Ok(())
            }
            MarkovError::NotLumpable { what } => {
                write!(f, "partition is not exactly lumpable: {what}")
            }
            MarkovError::InvalidOption { what } => write!(f, "invalid option: {what}"),
            MarkovError::DimensionMismatch { what } => {
                write!(f, "dimension mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for MarkovError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            // The cause chain descends into the final rung's failure;
            // the Display above lists every earlier rung inline.
            MarkovError::FallbackExhausted { attempts } => {
                attempts.last().map(|a| a.error.as_ref() as _)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            MarkovError::EmptyChain,
            MarkovError::UnknownState { id: 3, len: 2 },
            MarkovError::InvalidRate { from: 0, to: 1, rate: -1.0 },
            MarkovError::InvalidReward { state: 0, reward: f64::NAN },
            MarkovError::SelfLoop { state: 1 },
            MarkovError::Reducible { state: 0 },
            MarkovError::Singular,
            MarkovError::InvalidProbability { what: "sum".into() },
            MarkovError::MissingStates { what: "absorbing".into() },
            MarkovError::NotConverged {
                method: "power",
                iterations: 100,
                residual: 1e-9,
                tolerance: 1e-14,
            },
            MarkovError::NotLumpable { what: "rewards differ".into() },
            MarkovError::InvalidOption { what: "epsilon".into() },
            MarkovError::DimensionMismatch { what: "3x2 generator".into() },
            MarkovError::Timeout { method: "power", iterations: 10, elapsed_ms: 31, budget_ms: 30 },
            MarkovError::Cancelled { method: "sparse", iterations: 17 },
            MarkovError::FallbackExhausted {
                attempts: vec![SolveAttempt {
                    method: "gth",
                    iterations: None,
                    residual: None,
                    error: Box::new(MarkovError::Singular),
                }],
            },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn not_converged_reports_residual_and_iterations() {
        let e = MarkovError::NotConverged {
            method: "power",
            iterations: 12345,
            residual: 2.5e-9,
            tolerance: 1e-14,
        };
        let s = e.to_string();
        assert!(s.contains("12345"), "{s}");
        assert!(s.contains("2.500e-9"), "{s}");
        assert!(s.contains("1.0e-14"), "{s}");
    }

    #[test]
    fn fallback_exhausted_lists_every_rung_and_chains_the_last() {
        use std::error::Error as _;
        let e = MarkovError::FallbackExhausted {
            attempts: vec![
                SolveAttempt {
                    method: "power",
                    iterations: Some(1_000),
                    residual: Some(3.2e-7),
                    error: Box::new(MarkovError::NotConverged {
                        method: "power",
                        iterations: 1_000,
                        residual: 3.2e-7,
                        tolerance: 1e-14,
                    }),
                },
                SolveAttempt {
                    method: "lu",
                    iterations: None,
                    residual: None,
                    error: Box::new(MarkovError::Singular),
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("2 rung(s)"), "{s}");
        assert!(s.contains("power after 1000 iterations"), "{s}");
        assert!(s.contains("3.200e-7"), "{s}");
        assert!(s.contains("lu: linear system is singular"), "{s}");
        // Cause chain descends into the final rung's error.
        assert_eq!(e.source().unwrap().to_string(), MarkovError::Singular.to_string());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MarkovError>();
    }
}
