//! Stable content fingerprints for chains and matrices.
//!
//! The solve cache in `rascad-core` keys block solutions by the *content*
//! of the generated chain, not by the spec that produced it: two blocks
//! with different names but identical states, rewards, and rates must
//! share a cache entry, and a sweep that mutates one parameter must miss
//! for exactly the blocks whose chains changed. The fingerprint is a
//! 64-bit FNV-1a hash over a canonical byte encoding — stable across
//! processes and platform word sizes, with no dependency on `std`'s
//! randomized `Hasher` state.
//!
//! Collisions are possible in principle with a 64-bit digest, so cache
//! consumers must confirm equality of the underlying chain on a hit; the
//! fingerprint is a fast filter, not a proof of identity.

use crate::ctmc::Ctmc;
use crate::matrix::SparseMatrix;

/// A 64-bit stable content digest.
///
/// Ordering and equality are on the raw digest value, so fingerprints
/// can serve as map keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over a canonical byte stream.
///
/// Deliberately tiny: every input is reduced to little-endian bytes
/// before mixing, so the digest depends only on logical content.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Starts a fresh hash at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Mixes raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes a length/count (as little-endian `u64`).
    pub fn write_usize(&mut self, v: usize) {
        self.write_bytes(&(v as u64).to_le_bytes());
    }

    /// Mixes an `f64` by its exact bit pattern, canonicalizing `-0.0` to
    /// `+0.0` so arithmetically identical rates always agree. NaN bits
    /// pass through unchanged (validated chains never contain them).
    pub fn write_f64(&mut self, v: f64) {
        let v = if v == 0.0 { 0.0 } else { v };
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// Mixes a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Finalizes the digest.
    #[must_use]
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Ctmc {
    /// Canonical content fingerprint of the chain.
    ///
    /// Covers the state count, every label and reward (in state-id
    /// order), and every positive-rate transition sorted by
    /// `(from, to, rate bits)` — so two chains built with transitions in
    /// different insertion orders still hash identically.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_str("ctmc/v1");
        h.write_usize(self.len());
        for s in self.states() {
            h.write_str(&s.label);
            h.write_f64(s.reward);
        }
        let mut edges: Vec<(usize, usize, u64)> =
            self.transitions().iter().map(|t| (t.from, t.to, t.rate.to_bits())).collect();
        edges.sort_unstable();
        h.write_usize(edges.len());
        for (from, to, rate_bits) in edges {
            h.write_usize(from);
            h.write_usize(to);
            h.write_bytes(&rate_bits.to_le_bytes());
        }
        h.finish()
    }
}

impl SparseMatrix {
    /// Canonical content fingerprint of the matrix (shape, row pointers,
    /// column indices, and value bits in CSR order — already canonical
    /// because CSR sorts entries by `(row, col)` with duplicates summed).
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new();
        h.write_str("csr/v1");
        h.write_usize(self.rows());
        h.write_usize(self.cols());
        h.write_usize(self.nnz());
        for i in 0..self.rows() {
            for (c, v) in self.row_entries(i) {
                h.write_usize(i);
                h.write_usize(c);
                h.write_f64(v);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn chain(rates: &[(usize, usize, f64)]) -> Ctmc {
        let mut b = CtmcBuilder::new();
        b.add_state("up", 1.0);
        b.add_state("down", 0.0);
        b.add_state("half", 0.5);
        for &(f, t, r) in rates {
            b.add_transition(f, t, r);
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_chains_share_a_fingerprint() {
        let a = chain(&[(0, 1, 0.1), (1, 0, 2.0), (0, 2, 0.3)]);
        let b = chain(&[(0, 1, 0.1), (1, 0, 2.0), (0, 2, 0.3)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn transition_insertion_order_is_irrelevant() {
        let a = chain(&[(0, 1, 0.1), (1, 0, 2.0), (0, 2, 0.3)]);
        let b = chain(&[(0, 2, 0.3), (0, 1, 0.1), (1, 0, 2.0)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn any_content_change_moves_the_fingerprint() {
        let base = chain(&[(0, 1, 0.1), (1, 0, 2.0)]);
        let rate = chain(&[(0, 1, 0.1000001), (1, 0, 2.0)]);
        let edge = chain(&[(0, 2, 0.1), (1, 0, 2.0)]);
        assert_ne!(base.fingerprint(), rate.fingerprint());
        assert_ne!(base.fingerprint(), edge.fingerprint());

        let mut b = CtmcBuilder::new();
        b.add_state("up", 1.0);
        b.add_state("down", 0.25); // different reward
        b.add_state("half", 0.5);
        b.add_transition(0, 1, 0.1);
        b.add_transition(1, 0, 2.0);
        let reward = b.build().unwrap();
        assert_ne!(base.fingerprint(), reward.fingerprint());

        let mut b = CtmcBuilder::new();
        b.add_state("up", 1.0);
        b.add_state("DOWN", 0.0); // different label
        b.add_state("half", 0.5);
        b.add_transition(0, 1, 0.1);
        b.add_transition(1, 0, 2.0);
        let label = b.build().unwrap();
        assert_ne!(base.fingerprint(), label.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_processes() {
        // Pinned digest: if the canonical encoding ever changes, bump
        // the "ctmc/v1" tag and update this constant deliberately.
        let c = chain(&[(0, 1, 0.5), (1, 2, 1.5), (2, 0, 2.5)]);
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
        let again = chain(&[(0, 1, 0.5), (1, 2, 1.5), (2, 0, 2.5)]);
        assert_eq!(c.fingerprint(), again.fingerprint());
    }

    #[test]
    fn negative_zero_rates_hash_like_positive_zero() {
        let mut h1 = StableHasher::new();
        h1.write_f64(0.0);
        let mut h2 = StableHasher::new();
        h2.write_f64(-0.0);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn matrix_fingerprint_tracks_content() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]);
        let b = SparseMatrix::from_triplets(2, 2, &[(1, 0, 2.0), (0, 1, 1.0)]);
        let c = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.5)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Fingerprint(0xdead_beef)), "00000000deadbeef");
    }
}
