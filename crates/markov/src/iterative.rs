//! Sparse iterative steady-state solver for large chains.
//!
//! Solves `π Q = 0`, `Σπ = 1` by symmetric Gauss–Seidel sweeps on the
//! inflow orientation: with `E_i` the total exit rate of state `i`, the
//! balance equations rearrange to `π_i = (Σ_{j≠i} π_j q_ji) / E_i`, and
//! a sweep updates each `π_i` in place from the freshest neighbour
//! values — once in increasing and once in decreasing state order, so
//! corrections propagate across the whole chain in both directions
//! within a single sweep (a forward-only sweep moves information just
//! one level per sweep down a long birth–death tail, needing `O(n)`
//! sweeps). Each sweep is `O(nnz)` and the working set is three
//! vectors, so chains with 10^5–10^6 states solve in
//! milliseconds-to-seconds where the dense direct methods (O(n²)
//! memory, O(n³) time) cannot even allocate.
//!
//! If a sweep blows up numerically or the iteration oscillates, the
//! solver falls back to damped Jacobi (JOR) from a fresh uniform start:
//! the same update evaluated against the previous iterate with damping
//! factor [`JACOBI_DAMPING`], which cannot oscillate even when the
//! embedded jump chain is periodic. Both schemes share one sweep budget
//! and one wall clock.
//!
//! Convergence is accepted only when the iterate delta is below
//! [`SolveOptions::tolerance`] *and* the true scaled residual
//! `‖πQ‖∞ / ‖Q‖∞` — the quantity certification gates on — is below
//! [`SPARSE_RESIDUAL_TARGET`]. The residual check is allocation-free via
//! [`SparseMatrix::vec_mul_into`].

use crate::ctmc::{Ctmc, SolveOptions};
use crate::error::MarkovError;
use crate::matrix::SparseMatrix;

/// Default Gauss–Seidel/Jacobi sweep budget (each sweep is `O(nnz)`).
/// Overridden by [`SolveOptions::max_iterations`].
pub const SPARSE_SWEEP_BUDGET: usize = 10_000;

/// Scaled-residual acceptance target, one decade tighter than the
/// certification `ok` gate (1e-9) so certified sparse solves pass with
/// margin.
pub const SPARSE_RESIDUAL_TARGET: f64 = 1e-10;

/// Damping factor for the Jacobi fallback. Strictly inside `(0, 1)` so
/// the fallback iteration is a strict convex combination with the
/// previous iterate and cannot cycle.
const JACOBI_DAMPING: f64 = 0.5;

/// Consecutive sweeps with a worsening delta before Gauss–Seidel is
/// declared oscillating and the Jacobi fallback takes over.
const OSCILLATION_LIMIT: usize = 64;

/// On chains at or above [`crate::ctmc::LARGE_CHAIN_STATES`] states the
/// certified residual is additionally checked every this many sweeps
/// once the iterate delta falls below [`EARLY_RESIDUAL_DELTA`]. The
/// scaled residual is the quantity certification gates on and is
/// typically satisfied long before the much stricter delta tolerance,
/// so large solves accept as soon as they are certifiably done instead
/// of sweeping on. Small chains keep the delta-first behaviour, which
/// yields iterates that match the direct solvers to near machine
/// precision.
const EARLY_RESIDUAL_EVERY: usize = 8;

/// Delta threshold that arms the periodic residual check on large
/// chains (see [`EARLY_RESIDUAL_EVERY`]).
const EARLY_RESIDUAL_DELTA: f64 = 1e-6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scheme {
    GaussSeidel,
    Jacobi,
}

impl Scheme {
    fn name(self) -> &'static str {
        match self {
            Scheme::GaussSeidel => "gauss-seidel",
            Scheme::Jacobi => "jacobi",
        }
    }
}

/// Why a scheme stopped sweeping without converging.
enum Stop {
    /// Numerical blowup or sustained oscillation — worth retrying with
    /// the more conservative scheme.
    Unstable { sweeps: usize },
    /// Budget exhausted; carries the typed error to surface.
    Failed(MarkovError),
}

struct Workspace {
    /// Current iterate (normalized each sweep).
    x: Vec<f64>,
    /// Previous iterate, for the delta and the Jacobi update.
    prev: Vec<f64>,
    /// Scratch for the residual SpMV.
    scratch: Vec<f64>,
}

pub(crate) fn steady_state_sparse(
    chain: &Ctmc,
    options: &SolveOptions,
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.len();
    let mut span = rascad_obs::span("markov.sparse");
    span.record("states", n);
    let q = chain.generator();
    // Row i of Qᵀ lists the inflows of state i (including the diagonal).
    let qt = q.transpose();
    let exit = chain.exit_rates();
    if exit.iter().any(|&e| e.is_nan() || e <= 0.0) {
        // Cannot happen after the irreducibility check (every state of
        // an irreducible multi-state chain has an exit), but direct
        // callers get a typed error instead of a division by zero.
        return Err(MarkovError::Singular);
    }
    // ‖Q‖∞ = max_i (|q_ii| + Σ_{j≠i} q_ij) = 2 × the largest exit rate.
    let norm_q = 2.0 * exit.iter().fold(0.0_f64, |a, &b| a.max(b));
    let budget = options.sparse_sweep_budget();
    let start = std::time::Instant::now();
    let mut ws =
        Workspace { x: vec![1.0 / n as f64; n], prev: vec![0.0; n], scratch: vec![0.0; n] };
    let mut trace = rascad_obs::trace::begin("sparse", "residual", n);

    let mut spent = 0usize;
    for scheme in [Scheme::GaussSeidel, Scheme::Jacobi] {
        let remaining = budget.saturating_sub(spent);
        match run_scheme(
            scheme, &q, &qt, &exit, norm_q, options, remaining, start, &mut ws, &mut trace,
        ) {
            Ok((sweeps, residual)) => {
                span.record("scheme", scheme.name());
                span.record("sweeps", spent + sweeps);
                span.record("residual", residual);
                record_outcome(spent + sweeps, residual);
                trace.finish("converged");
                return Ok(std::mem::take(&mut ws.x));
            }
            Err(Stop::Unstable { sweeps }) => {
                spent += sweeps;
                rascad_obs::flight_event(
                    "markov.sparse.fallback",
                    sweeps as f64,
                    &format!(
                        "{} unstable after {sweeps} sweeps; retrying with jacobi",
                        scheme.name()
                    ),
                );
                // Jacobi restarts from a clean uniform vector.
                ws.x.fill(1.0 / n as f64);
            }
            Err(Stop::Failed(e)) => {
                span.record("scheme", scheme.name());
                if let MarkovError::NotConverged { iterations, residual, .. } = &e {
                    span.record("sweeps", *iterations);
                    record_outcome(*iterations, *residual);
                }
                trace.finish(if matches!(e, MarkovError::Timeout { .. }) {
                    "timeout"
                } else {
                    "not-converged"
                });
                return Err(e);
            }
        }
    }
    // Both schemes went unstable inside the budget: report the spent
    // sweeps as a non-convergence so the ladder can fall through.
    trace.finish("not-converged");
    Err(MarkovError::NotConverged {
        method: "sparse",
        iterations: spent,
        residual: f64::INFINITY,
        tolerance: options.tolerance,
    })
}

fn record_outcome(sweeps: usize, residual: f64) {
    rascad_obs::record_value_with("markov.iterations", &[("method", "sparse")], sweeps as f64);
    rascad_obs::record_value_with("markov.residual", &[("method", "sparse")], residual);
    rascad_obs::counter_with("markov.solves", &[("method", "sparse")], 1);
}

/// Runs one scheme until convergence, instability, or budget/clock
/// exhaustion. On success returns `(sweeps, scaled_residual)` with the
/// converged iterate left in `ws.x`.
#[allow(clippy::too_many_arguments)]
fn run_scheme(
    scheme: Scheme,
    q: &SparseMatrix,
    qt: &SparseMatrix,
    exit: &[f64],
    norm_q: f64,
    options: &SolveOptions,
    budget: usize,
    start: std::time::Instant,
    ws: &mut Workspace,
    trace: &mut rascad_obs::trace::ConvergenceTrace,
) -> Result<(usize, f64), Stop> {
    let n = exit.len();
    let large = n >= crate::ctmc::LARGE_CHAIN_STATES;
    let mut worsening = 0usize;
    let mut last_delta = f64::INFINITY;
    for sweep in 1..=budget {
        if options.cancelled() {
            return Err(Stop::Failed(options.cancelled_error("sparse", sweep)));
        }
        let elapsed = start.elapsed();
        if options.over_budget(elapsed) {
            return Err(Stop::Failed(options.timeout_error("sparse", sweep, elapsed)));
        }
        ws.prev.copy_from_slice(&ws.x);
        match scheme {
            Scheme::GaussSeidel => {
                // Symmetric sweep: forward then backward pass.
                for (i, &e) in exit.iter().enumerate() {
                    ws.x[i] = inflow_current(qt, &ws.x, i) / e;
                }
                for i in (0..n).rev() {
                    ws.x[i] = inflow_current(qt, &ws.x, i) / exit[i];
                }
            }
            Scheme::Jacobi => {
                for (i, &e) in exit.iter().enumerate() {
                    let mut inflow = 0.0;
                    for (j, rate) in qt.row_entries(i) {
                        if j != i {
                            inflow += rate * ws.prev[j];
                        }
                    }
                    ws.x[i] = (1.0 - JACOBI_DAMPING) * ws.prev[i] + JACOBI_DAMPING * inflow / e;
                }
            }
        }
        let mass: f64 = ws.x.iter().sum();
        if !mass.is_finite() || mass <= 0.0 {
            return Err(Stop::Unstable { sweeps: sweep });
        }
        let inv = 1.0 / mass;
        let mut delta = 0.0;
        for (xi, pi) in ws.x.iter_mut().zip(&ws.prev) {
            *xi *= inv;
            delta += (*xi - pi).abs();
        }
        trace.step(sweep, delta);
        if !delta.is_finite() {
            return Err(Stop::Unstable { sweeps: sweep });
        }
        if delta >= last_delta {
            worsening += 1;
            if worsening >= OSCILLATION_LIMIT && scheme == Scheme::GaussSeidel {
                return Err(Stop::Unstable { sweeps: sweep });
            }
        } else {
            worsening = 0;
        }
        last_delta = delta;
        let try_accept = delta < options.tolerance
            || (large && delta < EARLY_RESIDUAL_DELTA && sweep % EARLY_RESIDUAL_EVERY == 0);
        if try_accept {
            // Delta convergence is necessary but not sufficient: accept
            // only when the certified quantity — the scaled true
            // residual — is already below target.
            q.vec_mul_into(&ws.x, &mut ws.scratch);
            let residual_inf = ws.scratch.iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
            let scaled = if norm_q > 0.0 { residual_inf / norm_q } else { residual_inf };
            if scaled <= SPARSE_RESIDUAL_TARGET {
                return Ok((sweep, scaled));
            }
        }
    }
    Err(Stop::Failed(MarkovError::NotConverged {
        method: "sparse",
        iterations: budget,
        residual: last_delta,
        tolerance: options.tolerance,
    }))
}

/// Inflow of state `i` evaluated against the current (partially
/// updated) iterate — the Gauss–Seidel update numerator.
#[inline]
fn inflow_current(qt: &SparseMatrix, x: &[f64], i: usize) -> f64 {
    let mut inflow = 0.0;
    for (j, rate) in qt.row_entries(i) {
        if j != i {
            inflow += rate * x[j];
        }
    }
    inflow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::{CtmcBuilder, SteadyStateMethod};

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, lambda);
        b.add_transition(down, up, mu);
        b.build().unwrap()
    }

    fn birth_death(n: usize, lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        for j in 0..=n {
            b.add_state(format!("L{j}"), if j == 0 { 1.0 } else { 0.0 });
        }
        for j in 0..n {
            b.add_transition(j, j + 1, (n - j) as f64 * lambda);
            b.add_transition(j + 1, j, (j + 1) as f64 * mu);
        }
        b.build().unwrap()
    }

    #[test]
    fn sparse_matches_gth_on_small_chain() {
        let c = two_state(2e-4, 0.25);
        let gth = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let sparse = c.steady_state(SteadyStateMethod::Sparse).unwrap();
        for (a, b) in gth.iter().zip(&sparse) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_matches_gth_on_birth_death() {
        let c = birth_death(200, 1e-3, 0.2);
        let gth = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let sparse = c.steady_state(SteadyStateMethod::Sparse).unwrap();
        for (a, b) in gth.iter().zip(&sparse) {
            assert!((a - b).abs() < 1e-11, "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_solves_hundred_thousand_states() {
        // The tentpole size: 10^5+1 levels. Each sweep is O(nnz);
        // release builds finish in well under a second, but debug-mode
        // sweeps are ~50x slower, so give an explicit generous wall
        // clock instead of relying on the 30 s default.
        let n = 100_000;
        let c = birth_death(n, 1e-5, 0.02);
        let opts = SolveOptions {
            wall_clock: Some(std::time::Duration::from_secs(600)),
            ..SolveOptions::default()
        };
        let pi = c.steady_state_with(SteadyStateMethod::Sparse, &opts).unwrap();
        assert_eq!(pi.len(), n + 1);
        let mass: f64 = pi.iter().sum();
        assert!((mass - 1.0).abs() < 1e-12);
        // Certified-quality residual.
        let q = c.generator();
        let res = q.vec_mul(&pi).iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
        let norm_q = 2.0 * c.exit_rates().iter().fold(0.0_f64, |a, &b| a.max(b));
        assert!(res / norm_q < 1e-9, "scaled residual {}", res / norm_q);
    }

    #[test]
    fn jacobi_scheme_agrees_with_direct() {
        // Drive the fallback scheme directly so it stays covered even
        // though Gauss–Seidel handles every well-posed chain first.
        let c = birth_death(20, 0.01, 0.5);
        let q = c.generator();
        let qt = q.transpose();
        let exit = c.exit_rates();
        let norm_q = 2.0 * exit.iter().fold(0.0_f64, |a, &b| a.max(b));
        let n = c.len();
        let mut ws =
            Workspace { x: vec![1.0 / n as f64; n], prev: vec![0.0; n], scratch: vec![0.0; n] };
        let opts = SolveOptions::default();
        let mut trace = rascad_obs::trace::begin("sparse", "residual", n);
        let (sweeps, residual) = run_scheme(
            Scheme::Jacobi,
            &q,
            &qt,
            &exit,
            norm_q,
            &opts,
            SPARSE_SWEEP_BUDGET,
            std::time::Instant::now(),
            &mut ws,
            &mut trace,
        )
        .unwrap_or_else(|_| panic!("jacobi did not converge"));
        trace.finish("converged");
        assert!(sweeps > 0 && residual <= SPARSE_RESIDUAL_TARGET);
        let gth = c.steady_state(SteadyStateMethod::Gth).unwrap();
        for (a, b) in gth.iter().zip(&ws.x) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn exhausted_sweep_budget_fails_typed() {
        let opts = SolveOptions {
            max_iterations: Some(2),
            tolerance: 0.0, // unreachable: force budget exhaustion
            wall_clock: None,
            ..SolveOptions::default()
        };
        let err = two_state(0.1, 0.9).steady_state_with(SteadyStateMethod::Sparse, &opts);
        match err {
            Err(MarkovError::NotConverged { method, iterations, .. }) => {
                assert_eq!(method, "sparse");
                assert_eq!(iterations, 2);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn zero_wall_clock_times_out_typed() {
        let opts = SolveOptions {
            max_iterations: None,
            tolerance: 1e-14,
            wall_clock: Some(std::time::Duration::ZERO),
            ..SolveOptions::default()
        };
        match two_state(0.1, 0.9).steady_state_with(SteadyStateMethod::Sparse, &opts) {
            Err(MarkovError::Timeout { method: "sparse", budget_ms: 0, .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn reducible_chain_rejected_before_sweeping() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a", 1.0);
        let c = b.add_state("b", 0.0);
        b.add_transition(a, c, 1.0);
        let chain = b.build().unwrap();
        assert!(matches!(
            chain.steady_state(SteadyStateMethod::Sparse).unwrap_err(),
            MarkovError::Reducible { .. }
        ));
    }
}
