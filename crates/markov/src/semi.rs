//! Semi-Markov processes.
//!
//! The paper's GMB module offers "graphical Markov, semi-Markov and
//! reliability block diagram modeling". A semi-Markov process relaxes
//! the exponential-sojourn assumption: each state has an arbitrary
//! sojourn-time distribution, and jumps follow an embedded discrete-time
//! chain. Steady-state measures follow from the classic ratio formula
//! `π_i = ν_i·m_i / Σ_j ν_j·m_j`, where `ν` is the stationary vector of
//! the embedded chain and `m_i` the mean sojourn in state `i`.

use crate::dense::DenseMatrix;
use crate::error::MarkovError;
use crate::gth;

/// Sojourn-time distribution of a semi-Markov state.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum SojournDistribution {
    /// Exponential with the given rate (mean `1/rate`).
    Exponential {
        /// Rate parameter (> 0).
        rate: f64,
    },
    /// Deterministic (constant) sojourn.
    Deterministic {
        /// The constant duration (>= 0).
        value: f64,
    },
    /// Uniform on `[low, high]`.
    Uniform {
        /// Lower bound (>= 0).
        low: f64,
        /// Upper bound (>= low).
        high: f64,
    },
    /// Erlang with `k` exponential phases of the given rate.
    Erlang {
        /// Number of phases (>= 1).
        k: u32,
        /// Per-phase rate (> 0).
        rate: f64,
    },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull {
        /// Shape parameter (> 0).
        shape: f64,
        /// Scale parameter (> 0).
        scale: f64,
    },
    /// Lognormal where the underlying normal has mean `mu` and standard
    /// deviation `sigma`.
    Lognormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal (> 0).
        sigma: f64,
    },
}

impl SojournDistribution {
    /// Mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            SojournDistribution::Exponential { rate } => 1.0 / rate,
            SojournDistribution::Deterministic { value } => value,
            SojournDistribution::Uniform { low, high } => 0.5 * (low + high),
            SojournDistribution::Erlang { k, rate } => f64::from(k) / rate,
            SojournDistribution::Weibull { shape, scale } => scale * gamma(1.0 + 1.0 / shape),
            SojournDistribution::Lognormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
        }
    }

    /// Variance of the distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        match *self {
            SojournDistribution::Exponential { rate } => 1.0 / (rate * rate),
            SojournDistribution::Deterministic { .. } => 0.0,
            SojournDistribution::Uniform { low, high } => (high - low).powi(2) / 12.0,
            SojournDistribution::Erlang { k, rate } => f64::from(k) / (rate * rate),
            SojournDistribution::Weibull { shape, scale } => {
                let g1 = gamma(1.0 + 1.0 / shape);
                let g2 = gamma(1.0 + 2.0 / shape);
                scale * scale * (g2 - g1 * g1)
            }
            SojournDistribution::Lognormal { mu, sigma } => {
                let s2 = sigma * sigma;
                (s2.exp() - 1.0) * (2.0 * mu + s2).exp()
            }
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidOption`] describing the bad
    /// parameter.
    pub fn validate(&self) -> Result<(), MarkovError> {
        let bad = |what: String| Err(MarkovError::InvalidOption { what });
        match *self {
            SojournDistribution::Exponential { rate } => {
                if !(rate > 0.0 && rate.is_finite()) {
                    return bad(format!("exponential rate {rate}"));
                }
            }
            SojournDistribution::Deterministic { value } => {
                if !(value >= 0.0 && value.is_finite()) {
                    return bad(format!("deterministic value {value}"));
                }
            }
            SojournDistribution::Uniform { low, high } => {
                if !(low >= 0.0 && high >= low && high.is_finite()) {
                    return bad(format!("uniform bounds [{low}, {high}]"));
                }
            }
            SojournDistribution::Erlang { k, rate } => {
                if k == 0 || !(rate > 0.0 && rate.is_finite()) {
                    return bad(format!("erlang k={k} rate={rate}"));
                }
            }
            SojournDistribution::Weibull { shape, scale } => {
                if !(shape > 0.0 && scale > 0.0 && shape.is_finite() && scale.is_finite()) {
                    return bad(format!("weibull shape={shape} scale={scale}"));
                }
            }
            SojournDistribution::Lognormal { mu, sigma } => {
                if !(sigma > 0.0 && sigma.is_finite() && mu.is_finite()) {
                    return bad(format!("lognormal mu={mu} sigma={sigma}"));
                }
            }
        }
        Ok(())
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Builds a [`SemiMarkov`] process incrementally.
#[derive(Debug, Clone, Default)]
pub struct SemiMarkovBuilder {
    labels: Vec<String>,
    rewards: Vec<f64>,
    sojourns: Vec<Option<SojournDistribution>>,
    jumps: Vec<(usize, usize, f64)>,
}

impl SemiMarkovBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state with its reward and sojourn distribution; returns its
    /// id.
    pub fn add_state(
        &mut self,
        label: impl Into<String>,
        reward: f64,
        sojourn: SojournDistribution,
    ) -> usize {
        self.labels.push(label.into());
        self.rewards.push(reward);
        self.sojourns.push(Some(sojourn));
        self.labels.len() - 1
    }

    /// Adds an embedded-chain jump probability `from -> to`.
    pub fn add_jump(&mut self, from: usize, to: usize, probability: f64) -> &mut Self {
        self.jumps.push((from, to, probability));
        self
    }

    /// Validates and finalizes the process.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::EmptyChain`] with no states.
    /// * [`MarkovError::UnknownState`] for bad jump endpoints.
    /// * [`MarkovError::InvalidProbability`] if a jump probability is
    ///   outside `[0, 1]` or some row does not sum to 1.
    /// * [`MarkovError::InvalidOption`] for bad distribution parameters.
    pub fn build(&self) -> Result<SemiMarkov, MarkovError> {
        let n = self.labels.len();
        if n == 0 {
            return Err(MarkovError::EmptyChain);
        }
        for s in self.sojourns.iter().flatten() {
            s.validate()?;
        }
        let mut p = DenseMatrix::zeros(n, n);
        for &(f, t, prob) in &self.jumps {
            if f >= n {
                return Err(MarkovError::UnknownState { id: f, len: n });
            }
            if t >= n {
                return Err(MarkovError::UnknownState { id: t, len: n });
            }
            if !(0.0..=1.0).contains(&prob) || !prob.is_finite() {
                return Err(MarkovError::InvalidProbability {
                    what: format!("jump {f}->{t} probability {prob}"),
                });
            }
            p[(f, t)] += prob;
        }
        for i in 0..n {
            let sum: f64 = p.row(i).iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(MarkovError::InvalidProbability {
                    what: format!("embedded row {i} sums to {sum}"),
                });
            }
        }
        Ok(SemiMarkov {
            labels: self.labels.clone(),
            rewards: self.rewards.clone(),
            sojourns: self.sojourns.iter().map(|s| s.expect("set in add_state")).collect(),
            embedded: p,
        })
    }
}

/// A validated semi-Markov process.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiMarkov {
    labels: Vec<String>,
    rewards: Vec<f64>,
    sojourns: Vec<SojournDistribution>,
    embedded: DenseMatrix,
}

impl SemiMarkov {
    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no states (never true for a built process).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// State labels in id order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Mean sojourn time of each state.
    pub fn mean_sojourns(&self) -> Vec<f64> {
        self.sojourns.iter().map(SojournDistribution::mean).collect()
    }

    /// Stationary distribution of the *embedded* jump chain.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Singular`] or [`MarkovError::Reducible`]
    /// when the embedded chain has no unique stationary vector.
    pub fn embedded_stationary(&self) -> Result<Vec<f64>, MarkovError> {
        let n = self.len();
        if n == 1 {
            return Ok(vec![1.0]);
        }
        // Convert the DTMC to a "generator" Q = P - I and run GTH.
        let mut q = self.embedded.clone();
        for i in 0..n {
            q[(i, i)] -= 1.0;
        }
        gth::stationary_gth_dense(&q)
    }

    /// Time-stationary state probabilities (fraction of time in each
    /// state): `π_i = ν_i·m_i / Σ ν_j·m_j`.
    ///
    /// # Errors
    ///
    /// Propagates [`embedded_stationary`](Self::embedded_stationary)
    /// errors, and returns [`MarkovError::Singular`] if all mean sojourns
    /// are zero.
    pub fn steady_state(&self) -> Result<Vec<f64>, MarkovError> {
        let nu = self.embedded_stationary()?;
        let m = self.mean_sojourns();
        let mut pi: Vec<f64> = nu.iter().zip(&m).map(|(a, b)| a * b).collect();
        let z: f64 = pi.iter().sum();
        if !(z.is_finite() && z > 0.0) {
            return Err(MarkovError::Singular);
        }
        for p in &mut pi {
            *p /= z;
        }
        Ok(pi)
    }

    /// Steady-state expected reward (availability for 0/1 rewards).
    ///
    /// # Errors
    ///
    /// Propagates [`steady_state`](Self::steady_state) errors.
    pub fn availability(&self) -> Result<f64, MarkovError> {
        let pi = self.steady_state()?;
        Ok(pi.iter().zip(&self.rewards).map(|(p, r)| p * r).sum())
    }

    /// Approximates the process by a CTMC using Erlang phase expansion:
    /// every state becomes `k_i` sequential exponential phases whose
    /// total matches the state's mean sojourn, with `k_i` chosen from
    /// the state's coefficient of variation (capped at `max_phases`).
    ///
    /// Steady-state measures of the result match the semi-Markov
    /// process *exactly* (they depend only on means); transient measures
    /// become a controllable approximation — the standard trick for
    /// analyzing deterministic repair times with Markov tooling.
    ///
    /// # Errors
    ///
    /// Returns a builder error if the expansion produces an invalid
    /// chain (cannot happen for a validated process).
    pub fn to_ctmc_erlang(&self, max_phases: u32) -> Result<crate::ctmc::Ctmc, MarkovError> {
        use crate::ctmc::CtmcBuilder;
        let max_phases = max_phases.max(1);
        let n = self.len();

        // Choose phase counts: k ≈ 1/cv² (cv² = var/mean²); exponential
        // states get k = 1 exactly, deterministic states get the cap.
        let mut phase_counts = Vec::with_capacity(n);
        for s in &self.sojourns {
            let mean = s.mean();
            let var = s.variance();
            let k = if mean <= 0.0 {
                1
            } else if var <= 0.0 {
                max_phases
            } else {
                let cv2 = var / (mean * mean);
                ((1.0 / cv2).round() as u32).clamp(1, max_phases)
            };
            phase_counts.push(k);
        }

        let mut b = CtmcBuilder::new();
        // first_phase[i] = state id of the first phase of state i.
        let mut first_phase = Vec::with_capacity(n);
        for (i, (label, k)) in self.labels.iter().zip(&phase_counts).enumerate() {
            let ids: Vec<_> = (0..*k)
                .map(|p| {
                    let lbl = if *k == 1 { label.clone() } else { format!("{label}#{p}") };
                    b.add_state(lbl, self.rewards[i])
                })
                .collect();
            first_phase.push(ids);
        }
        for (i, k) in phase_counts.iter().enumerate() {
            let mean = self.sojourns[i].mean();
            // Zero-mean states: route through at a very high rate.
            let rate = if mean > 0.0 { f64::from(*k) / mean } else { 1e12 };
            let phases = &first_phase[i];
            for w in phases.windows(2) {
                b.add_transition(w[0], w[1], rate);
            }
            let last = *phases.last().expect("k >= 1");
            for (j, target) in first_phase.iter().enumerate().take(n) {
                let p = self.embedded[(i, j)];
                if p > 0.0 && target[0] != last {
                    b.add_transition(last, target[0], rate * p);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn distribution_means() {
        assert!((SojournDistribution::Exponential { rate: 4.0 }.mean() - 0.25).abs() < 1e-15);
        assert_eq!(SojournDistribution::Deterministic { value: 3.0 }.mean(), 3.0);
        assert_eq!(SojournDistribution::Uniform { low: 1.0, high: 3.0 }.mean(), 2.0);
        assert!((SojournDistribution::Erlang { k: 3, rate: 6.0 }.mean() - 0.5).abs() < 1e-15);
        // Weibull with shape 1 is exponential with mean = scale.
        assert!(
            (SojournDistribution::Weibull { shape: 1.0, scale: 2.5 }.mean() - 2.5).abs() < 1e-9
        );
        let ln = SojournDistribution::Lognormal { mu: 0.0, sigma: 1.0 };
        assert!((ln.mean() - (0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn distribution_variances() {
        assert!((SojournDistribution::Exponential { rate: 2.0 }.variance() - 0.25).abs() < 1e-15);
        assert_eq!(SojournDistribution::Deterministic { value: 9.0 }.variance(), 0.0);
        assert!(
            (SojournDistribution::Uniform { low: 0.0, high: 6.0 }.variance() - 3.0).abs() < 1e-12
        );
        // Weibull shape 1 variance = scale^2.
        assert!(
            (SojournDistribution::Weibull { shape: 1.0, scale: 3.0 }.variance() - 9.0).abs() < 1e-7
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SojournDistribution::Exponential { rate: 0.0 }.validate().is_err());
        assert!(SojournDistribution::Deterministic { value: -1.0 }.validate().is_err());
        assert!(SojournDistribution::Uniform { low: 3.0, high: 1.0 }.validate().is_err());
        assert!(SojournDistribution::Erlang { k: 0, rate: 1.0 }.validate().is_err());
        assert!(SojournDistribution::Weibull { shape: -1.0, scale: 1.0 }.validate().is_err());
        assert!(SojournDistribution::Lognormal { mu: 0.0, sigma: 0.0 }.validate().is_err());
    }

    /// An alternating up/down semi-Markov process with deterministic
    /// repair reproduces the renewal-theory availability
    /// `A = m_up / (m_up + m_down)`.
    #[test]
    fn two_state_semi_markov_availability() {
        let mut b = SemiMarkovBuilder::new();
        let up = b.add_state("up", 1.0, SojournDistribution::Exponential { rate: 0.001 });
        let down = b.add_state("down", 0.0, SojournDistribution::Deterministic { value: 4.0 });
        b.add_jump(up, down, 1.0);
        b.add_jump(down, up, 1.0);
        let smp = b.build().unwrap();
        let a = smp.availability().unwrap();
        assert!((a - 1000.0 / 1004.0).abs() < 1e-12);
    }

    /// With all-exponential sojourns, the semi-Markov solution matches
    /// the CTMC solution of the same chain.
    #[test]
    fn exponential_semi_markov_matches_ctmc() {
        use crate::ctmc::{CtmcBuilder, SteadyStateMethod};
        // 3-state cycle, rates r_i.
        let rates = [0.5, 3.0, 7.0];
        let mut sb = SemiMarkovBuilder::new();
        for (i, &r) in rates.iter().enumerate() {
            sb.add_state(format!("s{i}"), 1.0, SojournDistribution::Exponential { rate: r });
        }
        for i in 0..3 {
            sb.add_jump(i, (i + 1) % 3, 1.0);
        }
        let smp = sb.build().unwrap();
        let pi_s = smp.steady_state().unwrap();

        let mut cb = CtmcBuilder::new();
        for i in 0..3 {
            cb.add_state(format!("s{i}"), 1.0);
        }
        for (i, &r) in rates.iter().enumerate() {
            cb.add_transition(i, (i + 1) % 3, r);
        }
        let ctmc = cb.build().unwrap();
        let pi_c = ctmc.steady_state(SteadyStateMethod::Gth).unwrap();
        for (a, b) in pi_s.iter().zip(&pi_c) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_expansion_preserves_steady_state() {
        use crate::ctmc::SteadyStateMethod;
        let mut b = SemiMarkovBuilder::new();
        let up = b.add_state("up", 1.0, SojournDistribution::Exponential { rate: 0.002 });
        let down = b.add_state("down", 0.0, SojournDistribution::Deterministic { value: 3.0 });
        b.add_jump(up, down, 1.0);
        b.add_jump(down, up, 1.0);
        let smp = b.build().unwrap();
        let a_smp = smp.availability().unwrap();

        for phases in [1, 4, 16] {
            let ctmc = smp.to_ctmc_erlang(phases).unwrap();
            // Exponential up state stays one phase; deterministic down
            // state gets the cap.
            assert_eq!(ctmc.len(), 1 + phases as usize);
            let pi = ctmc.steady_state(SteadyStateMethod::Gth).unwrap();
            let a = ctmc.expected_reward(&pi);
            assert!((a - a_smp).abs() < 1e-12, "phases={phases}: {a} vs {a_smp}");
        }
    }

    #[test]
    fn erlang_expansion_improves_transient_fidelity() {
        use crate::transient::{self, TransientOptions};
        // Deterministic 2h downtime starting from "down": with many
        // phases, P(still down at t = 1h) stays near 1 and P(down at
        // t = 3h) near 0; with one phase both are washed out.
        let mut b = SemiMarkovBuilder::new();
        let up = b.add_state("up", 1.0, SojournDistribution::Exponential { rate: 1e-6 });
        let down = b.add_state("down", 0.0, SojournDistribution::Deterministic { value: 2.0 });
        b.add_jump(up, down, 1.0);
        b.add_jump(down, up, 1.0);
        let smp = b.build().unwrap();

        let sharp = smp.to_ctmc_erlang(64).unwrap();
        let fuzzy = smp.to_ctmc_erlang(1).unwrap();
        let mut p0_sharp = vec![0.0; sharp.len()];
        p0_sharp[sharp.state_by_label("down#0").unwrap()] = 1.0;
        let mut p0_fuzzy = vec![0.0; fuzzy.len()];
        p0_fuzzy[fuzzy.state_by_label("down").unwrap()] = 1.0;

        let at = |chain: &crate::ctmc::Ctmc, p0: &[f64], t: f64| {
            transient::solve(chain, p0, t, TransientOptions::default()).unwrap().point_reward
        };
        // Still down at t=1 with high probability only for the sharp model.
        assert!(at(&sharp, &p0_sharp, 1.0) < 0.05);
        assert!(at(&fuzzy, &p0_fuzzy, 1.0) > 0.3);
        // Recovered by t=4 almost surely for the sharp model.
        assert!(at(&sharp, &p0_sharp, 4.0) > 0.99);
    }

    #[test]
    fn erlang_expansion_handles_self_loops() {
        use crate::ctmc::SteadyStateMethod;
        // Embedded self-loop: staying in "up" with p = 0.5 halves the
        // effective exit rate.
        let mut b = SemiMarkovBuilder::new();
        let up = b.add_state("up", 1.0, SojournDistribution::Exponential { rate: 0.01 });
        let down = b.add_state("down", 0.0, SojournDistribution::Exponential { rate: 1.0 });
        b.add_jump(up, up, 0.5);
        b.add_jump(up, down, 0.5);
        b.add_jump(down, up, 1.0);
        let smp = b.build().unwrap();
        let ctmc = smp.to_ctmc_erlang(8).unwrap();
        let pi = ctmc.steady_state(SteadyStateMethod::Gth).unwrap();
        let a = ctmc.expected_reward(&pi);
        // Mean up stretch = 100/(1-0.5) = 200 h; down = 1 h.
        assert!((a - 200.0 / 201.0).abs() < 1e-12, "{a}");
    }

    #[test]
    fn bad_rows_rejected() {
        let mut b = SemiMarkovBuilder::new();
        let s = b.add_state("a", 1.0, SojournDistribution::Deterministic { value: 1.0 });
        let t = b.add_state("b", 0.0, SojournDistribution::Deterministic { value: 1.0 });
        b.add_jump(s, t, 0.6); // row sums to 0.6
        b.add_jump(t, s, 1.0);
        assert!(matches!(b.build().unwrap_err(), MarkovError::InvalidProbability { .. }));
    }

    #[test]
    fn empty_and_unknown_rejected() {
        assert!(matches!(SemiMarkovBuilder::new().build().unwrap_err(), MarkovError::EmptyChain));
        let mut b = SemiMarkovBuilder::new();
        let s = b.add_state("a", 1.0, SojournDistribution::Deterministic { value: 1.0 });
        b.add_jump(s, 5, 1.0);
        assert!(matches!(b.build().unwrap_err(), MarkovError::UnknownState { .. }));
    }

    #[test]
    fn branching_semi_markov() {
        // up -> down_fast (p=0.9, 1h) or down_slow (p=0.1, 10h).
        let mut b = SemiMarkovBuilder::new();
        let up = b.add_state("up", 1.0, SojournDistribution::Exponential { rate: 0.01 });
        let fast = b.add_state("fast", 0.0, SojournDistribution::Deterministic { value: 1.0 });
        let slow = b.add_state("slow", 0.0, SojournDistribution::Deterministic { value: 10.0 });
        b.add_jump(up, fast, 0.9);
        b.add_jump(up, slow, 0.1);
        b.add_jump(fast, up, 1.0);
        b.add_jump(slow, up, 1.0);
        let smp = b.build().unwrap();
        let a = smp.availability().unwrap();
        // Mean cycle: 100 up + 0.9*1 + 0.1*10 = 101.9; A = 100/101.9.
        assert!((a - 100.0 / 101.9).abs() < 1e-12);
    }
}
