//! Exact (ordinary/strong) lumping of CTMCs.
//!
//! A partition of the state space is *exactly lumpable* when every state
//! of a class has the same total rate into each other class; the
//! quotient chain over the classes is then itself a CTMC whose
//! stationary distribution aggregates the original's exactly
//! (Kemeny–Snell). The canonical payoff in availability modeling: `N`
//! identical independently-failing units span a `2^N` product space, but
//! the popcount partition (group by *how many* units are down, not
//! *which*) is exactly lumpable, collapsing it to `N + 1` occupancy
//! levels — the birth–death idiom the generator's k-out-of-n expansion
//! emits directly, and the same collapse the Tier C lint's RAS204
//! symmetry classes assert from the structure function.
//!
//! [`coarsest_exact_partition`] discovers such symmetry automatically by
//! partition refinement; [`lump`] verifies a partition and builds the
//! quotient; [`identical_units_product`] and [`occupancy_partition`]
//! build the `2^N` reference space used by the brute-force equivalence
//! tests.

use std::collections::BTreeMap;

use crate::ctmc::{Ctmc, CtmcBuilder, StateId};
use crate::error::MarkovError;

/// Relative tolerance for the exact-lumpability check. Symmetric
/// chains produce bit-identical class flows, but quotients assembled
/// from independently-derived rates may differ in the last few ulps.
pub const LUMP_REL_TOL: f64 = 1e-12;

/// A partition of a chain's states into contiguous classes `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    classes: Vec<usize>,
    count: usize,
}

impl Partition {
    /// Builds a partition from a per-state class map. Classes must be
    /// numbered contiguously from 0 (every class below the maximum must
    /// be non-empty).
    ///
    /// # Errors
    ///
    /// [`MarkovError::InvalidOption`] if `classes` is empty or the class
    /// numbering has gaps.
    pub fn new(classes: Vec<usize>) -> Result<Self, MarkovError> {
        let count = match classes.iter().max() {
            Some(&m) => m + 1,
            None => {
                return Err(MarkovError::InvalidOption {
                    what: "partition of an empty state space".into(),
                })
            }
        };
        let mut seen = vec![false; count];
        for &c in &classes {
            seen[c] = true;
        }
        if let Some(gap) = seen.iter().position(|s| !s) {
            return Err(MarkovError::InvalidOption {
                what: format!("partition class {gap} is empty (classes must be contiguous)"),
            });
        }
        Ok(Partition { classes, count })
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the partition has no classes (never true for a built
    /// partition).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The class of state `s`.
    #[must_use]
    pub fn class_of(&self, s: StateId) -> usize {
        self.classes[s]
    }

    /// The per-state class map.
    #[must_use]
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Aggregates a stationary distribution of the original chain into
    /// per-class probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.classes().len()`.
    #[must_use]
    pub fn aggregate(&self, pi: &[f64]) -> Vec<f64> {
        assert_eq!(pi.len(), self.classes.len(), "dimension mismatch");
        let mut out = vec![0.0; self.count];
        for (s, &p) in pi.iter().enumerate() {
            out[self.classes[s]] += p;
        }
        out
    }
}

/// Verifies that `partition` is exactly lumpable for `chain` and builds
/// the quotient CTMC.
///
/// Quotient state `c` carries the reward shared by every member of
/// class `c` and the label of the class's first member (suffixed with
/// the member count when the class is not a singleton); its rate into
/// class `d` is the members' common aggregate rate.
///
/// # Errors
///
/// * [`MarkovError::NotLumpable`] when two states of a class disagree
///   on a reward or on the total rate into some other class (beyond
///   [`LUMP_REL_TOL`] relative).
/// * [`MarkovError::InvalidOption`] when the partition does not cover
///   the chain.
pub fn lump(chain: &Ctmc, partition: &Partition) -> Result<Ctmc, MarkovError> {
    let n = chain.len();
    if partition.classes().len() != n {
        return Err(MarkovError::InvalidOption {
            what: format!("partition covers {} states, chain has {n}", partition.classes().len()),
        });
    }
    let k = partition.len();
    let mut span = rascad_obs::span("markov.lump");
    span.record("states", n);
    span.record("classes", k);

    // Aggregate outflow per (state, target class), excluding internal
    // class flows — ordinary lumpability only constrains cross-class
    // rates.
    let mut flows: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); n];
    for t in chain.transitions() {
        let (cf, ct) = (partition.class_of(t.from), partition.class_of(t.to));
        if cf != ct {
            *flows[t.from].entry(ct).or_insert(0.0) += t.rate;
        }
    }

    // Representative (first member) of each class, checked against every
    // other member.
    let mut representative: Vec<Option<StateId>> = vec![None; k];
    for s in 0..n {
        let c = partition.class_of(s);
        match representative[c] {
            None => representative[c] = Some(s),
            Some(rep) => {
                let (ra, rb) = (chain.states()[rep].reward, chain.states()[s].reward);
                if !close(ra, rb) {
                    return Err(MarkovError::NotLumpable {
                        what: format!(
                            "states {rep} and {s} share class {c} but have rewards {ra} and {rb}"
                        ),
                    });
                }
                if let Some(d) = flow_mismatch(&flows[rep], &flows[s]) {
                    return Err(MarkovError::NotLumpable {
                        what: format!(
                            "states {rep} and {s} share class {c} but disagree on the total \
                             rate into class {d}"
                        ),
                    });
                }
            }
        }
    }

    let mut sizes = vec![0usize; k];
    for &c in partition.classes() {
        sizes[c] += 1;
    }
    let mut b = CtmcBuilder::new();
    for c in 0..k {
        let rep = representative[c].expect("contiguous partition has no empty class");
        let state = &chain.states()[rep];
        let label = if sizes[c] == 1 {
            state.label.clone()
        } else {
            format!("{}(+{})", state.label, sizes[c] - 1)
        };
        b.add_state(label, state.reward);
    }
    for (c, rep) in representative.iter().enumerate() {
        let rep = rep.expect("contiguous partition has no empty class");
        for (&d, &rate) in &flows[rep] {
            b.add_transition(c, d, rate);
        }
    }
    b.build()
}

/// Whether two aggregate-flow maps agree within [`LUMP_REL_TOL`];
/// returns the first disagreeing target class otherwise.
fn flow_mismatch(a: &BTreeMap<usize, f64>, b: &BTreeMap<usize, f64>) -> Option<usize> {
    for (&d, &ra) in a {
        if !close(ra, b.get(&d).copied().unwrap_or(0.0)) {
            return Some(d);
        }
    }
    for (&d, &rb) in b {
        if !a.contains_key(&d) && !close(0.0, rb) {
            return Some(d);
        }
    }
    None
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= LUMP_REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// Finds the coarsest exactly-lumpable partition that respects rewards,
/// by partition refinement: start from reward classes, then repeatedly
/// split any class whose members disagree on their aggregate rate into
/// some other class, until stable. Flow signatures are compared by f64
/// bit pattern, so only genuinely symmetric states (bit-identical class
/// flows, as produced by identical-unit structures) are merged — the
/// result is always safe to pass to [`lump`].
///
/// Runs in `O(n · nnz)` worst case; class numbering follows first-member
/// order, so the result is deterministic.
#[must_use]
pub fn coarsest_exact_partition(chain: &Ctmc) -> Partition {
    let n = chain.len();
    // Initial partition: states grouped by exact reward.
    let mut classes =
        number_by_key((0..n).map(|s| chain.states()[s].reward.to_bits()).collect::<Vec<_>>());
    loop {
        let count = classes.iter().max().map_or(0, |&m| m + 1);
        // Signature of each state: current class + sorted cross-class
        // flow vector (target class, summed rate bits).
        let mut flows: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); n];
        for t in chain.transitions() {
            let (cf, ct) = (classes[t.from], classes[t.to]);
            if cf != ct {
                *flows[t.from].entry(ct).or_insert(0.0) += t.rate;
            }
        }
        let keys: Vec<(usize, Vec<(usize, u64)>)> = (0..n)
            .map(|s| (classes[s], flows[s].iter().map(|(&d, &r)| (d, r.to_bits())).collect()))
            .collect();
        let refined = number_by_key(keys);
        let refined_count = refined.iter().max().map_or(0, |&m| m + 1);
        if refined_count == count {
            return Partition { classes: refined, count: refined_count };
        }
        classes = refined;
    }
}

/// Renumbers arbitrary grouping keys into contiguous classes ordered by
/// first appearance.
fn number_by_key<K: Ord + Clone>(keys: Vec<K>) -> Vec<usize> {
    let mut ids: BTreeMap<K, usize> = BTreeMap::new();
    let mut next = 0usize;
    let mut out = Vec::with_capacity(keys.len());
    // Two passes so ids follow state order, not key order.
    for k in &keys {
        if !ids.contains_key(k) {
            ids.insert(k.clone(), next);
            next += 1;
        }
    }
    // BTreeMap ordered insertion above assigns ids by first appearance
    // already (insertion guarded by contains_key), so the lookup pass
    // just reads them back.
    for k in &keys {
        out.push(ids[k]);
    }
    out
}

/// Builds the full `2^n` product chain of `n` identical units, each
/// failing at `lambda` and repaired independently at `mu`, with reward 1
/// while at least `k` units are up. State `mask` has unit `u` *failed*
/// iff bit `u` is set; state 0 (all up) is first.
///
/// This is the unlumped reference space: exponential in `n`, intended
/// for cross-validation at small `n` only.
///
/// # Errors
///
/// [`MarkovError::InvalidOption`] for `n == 0`, `n > 20` (the product
/// space would be larger than a million states), or `k > n`.
pub fn identical_units_product(n: u32, k: u32, lambda: f64, mu: f64) -> Result<Ctmc, MarkovError> {
    if n == 0 || n > 20 || k > n {
        return Err(MarkovError::InvalidOption {
            what: format!(
                "identical-units product space needs 0 < n <= 20 and k <= n, got n={n} k={k}"
            ),
        });
    }
    let states = 1usize << n;
    let mut b = CtmcBuilder::new();
    for mask in 0..states {
        let failed = (mask as u32).count_ones();
        let reward = if n - failed >= k { 1.0 } else { 0.0 };
        b.add_state(format!("u{mask:0width$b}", width = n as usize), reward);
    }
    for mask in 0..states {
        for u in 0..n {
            let bit = 1usize << u;
            if mask & bit == 0 {
                b.add_transition(mask, mask | bit, lambda);
            } else {
                b.add_transition(mask, mask & !bit, mu);
            }
        }
    }
    b.build()
}

/// The popcount (occupancy) partition of the `2^n` product space:
/// class `j` holds every state with exactly `j` failed units. Exactly
/// lumpable for [`identical_units_product`] chains, collapsing `2^n`
/// states to `n + 1`.
///
/// # Errors
///
/// [`MarkovError::InvalidOption`] under the same bounds as
/// [`identical_units_product`].
pub fn occupancy_partition(n: u32) -> Result<Partition, MarkovError> {
    if n == 0 || n > 20 {
        return Err(MarkovError::InvalidOption {
            what: format!("occupancy partition needs 0 < n <= 20, got n={n}"),
        });
    }
    let classes = (0..1usize << n).map(|mask| (mask as u32).count_ones() as usize).collect();
    Ok(Partition { classes, count: n as usize + 1 })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;
    use crate::ctmc::SteadyStateMethod;

    #[test]
    fn partition_rejects_gaps_and_empty() {
        assert!(Partition::new(vec![]).is_err());
        assert!(Partition::new(vec![0, 2]).is_err()); // class 1 empty
        let p = Partition::new(vec![0, 1, 0]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.class_of(2), 0);
    }

    #[test]
    fn aggregate_sums_classes() {
        let p = Partition::new(vec![0, 1, 0]).unwrap();
        assert_eq!(p.aggregate(&[0.25, 0.5, 0.25]), vec![0.5, 0.5]);
    }

    #[test]
    fn product_space_lumps_to_occupancy_levels() {
        let (n, k, lambda, mu) = (4, 2, 1e-3, 0.5);
        let full = identical_units_product(n, k, lambda, mu).unwrap();
        assert_eq!(full.len(), 16);
        let part = occupancy_partition(n).unwrap();
        let lumped = lump(&full, &part).unwrap();
        assert_eq!(lumped.len(), 5);
        // Level rates are the k-out-of-n birth–death rates.
        for j in 0..4usize {
            let down = lumped
                .transitions()
                .iter()
                .find(|t| t.from == j && t.to == j + 1)
                .map(|t| t.rate)
                .unwrap();
            assert!((down - (4 - j) as f64 * lambda).abs() < 1e-15, "level {j}");
            let up = lumped
                .transitions()
                .iter()
                .find(|t| t.from == j + 1 && t.to == j)
                .map(|t| t.rate)
                .unwrap();
            assert!((up - (j + 1) as f64 * mu).abs() < 1e-15, "level {j}");
        }
    }

    #[test]
    fn lumped_stationary_aggregates_the_full_one() {
        let (n, k, lambda, mu) = (5, 3, 2e-3, 0.4);
        let full = identical_units_product(n, k, lambda, mu).unwrap();
        let part = occupancy_partition(n).unwrap();
        let lumped = lump(&full, &part).unwrap();
        let pi_full = full.steady_state(SteadyStateMethod::Gth).unwrap();
        let pi_lumped = lumped.steady_state(SteadyStateMethod::Gth).unwrap();
        for (a, b) in part.aggregate(&pi_full).iter().zip(&pi_lumped) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let a_full = full.expected_reward(&pi_full);
        let a_lumped = lumped.expected_reward(&pi_lumped);
        assert!((a_full - a_lumped).abs() < 1e-12, "{a_full} vs {a_lumped}");
    }

    #[test]
    fn coarsest_partition_finds_the_symmetry() {
        let full = identical_units_product(6, 4, 1e-3, 0.3).unwrap();
        let p = coarsest_exact_partition(&full);
        // 2^6 = 64 states collapse to the 7 occupancy levels.
        assert_eq!(p.len(), 7);
        let occ = occupancy_partition(6).unwrap();
        assert_eq!(p.classes(), occ.classes());
        // And the discovered partition is accepted by the verifier.
        assert!(lump(&full, &p).is_ok());
    }

    #[test]
    fn coarsest_partition_of_asymmetric_chain_is_discrete() {
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("a", 1.0);
        let s1 = b.add_state("b", 1.0);
        let s2 = b.add_state("c", 0.0);
        b.add_transition(s0, s2, 1.0);
        b.add_transition(s1, s2, 2.0); // breaks the a/b symmetry
        b.add_transition(s2, s0, 0.5);
        b.add_transition(s2, s1, 0.5);
        let c = b.build().unwrap();
        assert_eq!(coarsest_exact_partition(&c).len(), 3);
    }

    #[test]
    fn non_lumpable_partition_rejected() {
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("a", 1.0);
        let s1 = b.add_state("b", 1.0);
        let s2 = b.add_state("c", 0.0);
        b.add_transition(s0, s2, 1.0);
        b.add_transition(s1, s2, 2.0);
        b.add_transition(s2, s0, 1.0);
        let c = b.build().unwrap();
        let p = Partition::new(vec![0, 0, 1]).unwrap();
        assert!(matches!(lump(&c, &p).unwrap_err(), MarkovError::NotLumpable { .. }));
    }

    #[test]
    fn reward_mismatch_rejected() {
        let mut b = CtmcBuilder::new();
        let s0 = b.add_state("a", 1.0);
        let s1 = b.add_state("b", 0.0);
        b.add_transition(s0, s1, 1.0);
        b.add_transition(s1, s0, 1.0);
        let c = b.build().unwrap();
        let p = Partition::new(vec![0, 0]).unwrap();
        assert!(matches!(lump(&c, &p).unwrap_err(), MarkovError::NotLumpable { .. }));
    }

    #[test]
    fn partition_size_must_match_chain() {
        let c = identical_units_product(2, 1, 0.1, 1.0).unwrap();
        let p = Partition::new(vec![0, 1]).unwrap();
        assert!(matches!(lump(&c, &p).unwrap_err(), MarkovError::InvalidOption { .. }));
    }

    #[test]
    fn product_space_bounds_enforced() {
        assert!(identical_units_product(0, 0, 0.1, 1.0).is_err());
        assert!(identical_units_product(21, 1, 0.1, 1.0).is_err());
        assert!(identical_units_product(3, 4, 0.1, 1.0).is_err());
        assert!(occupancy_partition(0).is_err());
    }
}
