//! Transient analysis by uniformization (randomization).
//!
//! RAScad reports *interval availability* over `(0, T)` where `T` is the
//! user's Mission Time. Uniformization computes state probabilities
//! `p(t) = p(0) e^{Qt}` as a Poisson mixture of DTMC powers,
//! `p(t) = Σ_k Poisson(Λt; k) · p(0) P^k` with `P = I + Q/Λ`,
//! and the *expected cumulative reward* (the integral availability) with
//! the standard one-extra-term recurrence. All terms are non-negative,
//! so the method is numerically stable for stiff availability chains.

use crate::ctmc::Ctmc;
use crate::error::MarkovError;
use crate::matrix::SparseMatrix;

/// Options for the uniformization solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Truncation error bound for the Poisson series (total mass left
    /// out). Default `1e-12`.
    pub epsilon: f64,
    /// Hard cap on the number of series terms (guards against absurd
    /// `Λt`). Default `10_000_000`.
    pub max_terms: usize,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions { epsilon: 1e-12, max_terms: 10_000_000 }
    }
}

/// Result of a transient solve at one time point.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSolution {
    /// Time the solution refers to.
    pub time: f64,
    /// State probabilities at `time`.
    pub probabilities: Vec<f64>,
    /// Expected instantaneous reward at `time` (point availability for
    /// 0/1 rewards).
    pub point_reward: f64,
    /// Expected time-averaged cumulative reward over `(0, time)`
    /// (interval availability for 0/1 rewards).
    pub interval_reward: f64,
    /// Probability mass the truncated Poisson series failed to capture
    /// (before renormalization) — the solve's truncation error.
    pub truncation: f64,
}

/// Uniformized DTMC: `P = I + Q/Λ` with `Λ ≥ max_i |q_ii|`.
#[derive(Debug, Clone)]
pub struct Uniformized {
    /// The uniformization rate Λ.
    pub rate: f64,
    /// The DTMC matrix `P` (rows sum to 1).
    pub dtmc: SparseMatrix,
}

/// Builds the uniformized DTMC of a chain.
///
/// The uniformization rate is `1.02 × max |q_ii|` (a small margin keeps
/// every diagonal of `P` strictly positive, which makes the chain
/// aperiodic and the series better behaved). A chain with no transitions
/// gets `Λ = 1` and `P = I`.
#[must_use]
pub fn uniformize(chain: &Ctmc) -> Uniformized {
    let q = chain.generator();
    let maxd = q.max_abs_diagonal();
    let rate = if maxd > 0.0 { maxd * 1.02 } else { 1.0 };
    let n = chain.len();
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    let mut diag = vec![1.0; n];
    for t in chain.transitions() {
        trips.push((t.from, t.to, t.rate / rate));
        diag[t.from] -= t.rate / rate;
    }
    for (i, d) in diag.iter().enumerate() {
        trips.push((i, i, *d));
    }
    Uniformized { rate, dtmc: SparseMatrix::from_triplets(n, n, &trips) }
}

/// Solves for state probabilities and rewards at time `t`, starting from
/// the distribution `p0`.
///
/// # Errors
///
/// * [`MarkovError::InvalidOption`] for negative `t`, bad `epsilon`, or a
///   series that exceeds `max_terms`.
/// * [`MarkovError::InvalidProbability`] if `p0` is not a distribution.
pub fn solve(
    chain: &Ctmc,
    p0: &[f64],
    t: f64,
    opts: TransientOptions,
) -> Result<TransientSolution, MarkovError> {
    check_distribution(p0, chain.len())?;
    if !t.is_finite() || t < 0.0 {
        return Err(MarkovError::InvalidOption { what: format!("time {t} must be >= 0") });
    }
    if !(opts.epsilon > 0.0 && opts.epsilon < 1.0) {
        return Err(MarkovError::InvalidOption {
            what: format!("epsilon {} must be in (0,1)", opts.epsilon),
        });
    }
    let rewards = chain.rewards();
    if t == 0.0 {
        let point = dot(p0, &rewards);
        return Ok(TransientSolution {
            time: 0.0,
            probabilities: p0.to_vec(),
            point_reward: point,
            interval_reward: point,
            truncation: 0.0,
        });
    }

    let mut span = rascad_obs::span("markov.transient");
    span.record("states", chain.len());
    span.record("t", t);

    let uni = uniformize(chain);
    let lt = uni.rate * t;
    span.record("uniformization_rate", uni.rate);

    // Poisson weights with scaling: iterate w_k = e^{-lt} (lt)^k / k!
    // in log space start, then multiply up. For large lt use the
    // steady-state-free straightforward recurrence with renormalization
    // guard (f64 handles lt up to ~700 in exp; beyond that, start from
    // the mode with scaling).
    let mut probs = p0.to_vec();
    let mut point_acc = vec![0.0; chain.len()];
    // cumulative-reward accumulator: L(t) = (1/Λ) Σ_k W_k p0 P^k with
    // W_k = Σ_{j>k} poisson(j) = 1 - CDF(k).
    let mut cum_acc = vec![0.0; chain.len()];

    let weights = poisson_weights(lt, opts.epsilon, opts.max_terms)?;
    // tail[k] = sum_{j > k} w_j  (computed as suffix sums over the
    // truncated series; truncation error <= epsilon).
    let kmax = weights.len() - 1;
    let mut tail = vec![0.0; kmax + 1];
    let mut run = 0.0;
    for k in (0..=kmax).rev() {
        tail[k] = run;
        run += weights[k];
    }
    // tail2[k] = sum_{j >= k} tail[j], for closing the cumulative
    // series when steady state is detected early.
    let mut tail2 = vec![0.0; kmax + 2];
    for k in (0..=kmax).rev() {
        tail2[k] = tail2[k + 1] + tail[k];
    }

    let mut steps = 0usize;
    // Scratch iterate reused across every SpMV step so the Poisson
    // series allocates nothing per term.
    let mut next = vec![0.0; chain.len()];
    // Truncation-error series: tail[k] is exactly the Poisson mass not
    // yet captured after term k, i.e. the running truncation error.
    let mut trace = rascad_obs::trace::begin("transient", "truncation", chain.len());
    for k in 0..=kmax {
        for i in 0..chain.len() {
            point_acc[i] += weights[k] * probs[i];
            cum_acc[i] += tail[k] * probs[i];
        }
        trace.step(k + 1, tail[k]);
        if k < kmax {
            uni.dtmc.vec_mul_into(&probs, &mut next);
            steps += 1;
            // Steady-state detection: once the DTMC iterates stop
            // moving, all remaining Poisson mass lands on the same
            // vector — close both series in one step.
            let delta: f64 = next.iter().zip(&probs).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut probs, &mut next);
            if delta < opts.epsilon * 1e-3 {
                for i in 0..chain.len() {
                    point_acc[i] += tail[k] * probs[i];
                    cum_acc[i] += tail2[k + 1] * probs[i];
                }
                break;
            }
        }
    }
    span.record("kmax", kmax);
    span.record("steps", steps);
    rascad_obs::record_value("markov.transient.kmax", kmax as f64);
    rascad_obs::counter("markov.transient.vec_mul_steps", steps as u64);
    rascad_obs::counter("markov.transient.solves", 1);

    // Normalize the point distribution against truncation loss.
    let mass: f64 = point_acc.iter().sum();
    // The probability mass the truncated series failed to capture —
    // the per-solve summary of the per-term series traced above.
    let truncation = (1.0 - mass).max(0.0);
    rascad_obs::record_value("markov.transient.truncation", truncation);
    trace.finish("done");
    if mass > 0.0 {
        for p in &mut point_acc {
            *p /= mass;
        }
    }
    let point = dot(&point_acc, &rewards);
    let cumulative: f64 = cum_acc.iter().zip(&rewards).map(|(c, r)| c * r).sum::<f64>() / uni.rate;
    let interval = cumulative / t;

    Ok(TransientSolution {
        time: t,
        probabilities: point_acc,
        point_reward: point,
        interval_reward: interval.clamp(0.0, rewards.iter().cloned().fold(0.0, f64::max)),
        truncation,
    })
}

/// Solves at each of several time points (reusing nothing across points;
/// the chains here are small enough that clarity wins).
///
/// # Errors
///
/// Propagates errors from [`solve`].
pub fn solve_many(
    chain: &Ctmc,
    p0: &[f64],
    times: &[f64],
    opts: TransientOptions,
) -> Result<Vec<TransientSolution>, MarkovError> {
    times.iter().map(|&t| solve(chain, p0, t, opts)).collect()
}

/// Solves at many time points in a *single* uniformization pass.
///
/// The DTMC power sequence `p0 · Pᵏ` is computed once and shared across
/// every requested time; each time point only contributes its own
/// Poisson weights. For a grid of `m` points this is ~`m×` cheaper than
/// [`solve_many`], which restarts the power iteration per point.
///
/// Results are returned in the order of `times` (which need not be
/// sorted).
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_grid(
    chain: &Ctmc,
    p0: &[f64],
    times: &[f64],
    opts: TransientOptions,
) -> Result<Vec<TransientSolution>, MarkovError> {
    check_distribution(p0, chain.len())?;
    if !(opts.epsilon > 0.0 && opts.epsilon < 1.0) {
        return Err(MarkovError::InvalidOption {
            what: format!("epsilon {} must be in (0,1)", opts.epsilon),
        });
    }
    for &t in times {
        if !t.is_finite() || t < 0.0 {
            return Err(MarkovError::InvalidOption { what: format!("time {t} must be >= 0") });
        }
    }
    let mut span = rascad_obs::span("markov.transient_grid");
    span.record("states", chain.len());
    span.record("points", times.len());

    let rewards = chain.rewards();
    let uni = uniformize(chain);
    span.record("uniformization_rate", uni.rate);

    // Per-time Poisson weights and suffix (tail) sums, packed into one
    // contiguous ragged buffer: series `i` occupies
    // `weights[offsets[i]..offsets[i+1]]`, and `tails` shares the same
    // layout. One allocation pair for the whole grid instead of two
    // heap vectors per time point.
    let mut weights: Vec<f64> = Vec::new();
    let mut offsets: Vec<usize> = Vec::with_capacity(times.len() + 1);
    offsets.push(0);
    let mut kmax = 0usize;
    for &t in times {
        let appended =
            poisson_weights_into(uni.rate * t, opts.epsilon, opts.max_terms, &mut weights)?;
        kmax = kmax.max(appended - 1);
        offsets.push(weights.len());
    }
    let mut tails = vec![0.0; weights.len()];
    for i in 0..times.len() {
        let mut run = 0.0;
        for k in (offsets[i]..offsets[i + 1]).rev() {
            tails[k] = run;
            run += weights[k];
        }
    }

    let n = chain.len();
    // Row-major accumulators: time point `i` owns `[i * n .. (i+1) * n]`.
    let mut point_acc = vec![0.0; times.len() * n];
    let mut cum_acc = vec![0.0; times.len() * n];
    let mut probs = p0.to_vec();
    // Scratch iterate reused across every SpMV step (no per-term
    // allocation in the shared-series sweep).
    let mut next = vec![0.0; n];
    for k in 0..=kmax {
        for i in 0..times.len() {
            let (lo, hi) = (offsets[i], offsets[i + 1]);
            if k < hi - lo {
                let (wk, tk) = (weights[lo + k], tails[lo + k]);
                let pa = &mut point_acc[i * n..(i + 1) * n];
                for (s, p) in pa.iter_mut().enumerate() {
                    *p += wk * probs[s];
                }
                let ca = &mut cum_acc[i * n..(i + 1) * n];
                for (s, c) in ca.iter_mut().enumerate() {
                    *c += tk * probs[s];
                }
            }
        }
        if k < kmax {
            uni.dtmc.vec_mul_into(&probs, &mut next);
            std::mem::swap(&mut probs, &mut next);
        }
    }
    span.record("kmax", kmax);
    rascad_obs::record_value("markov.transient.kmax", kmax as f64);
    rascad_obs::counter("markov.transient.vec_mul_steps", kmax as u64);
    rascad_obs::counter("markov.transient.grid_solves", 1);

    let max_reward = rewards.iter().cloned().fold(0.0, f64::max);
    Ok(times
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let mut p = point_acc[i * n..(i + 1) * n].to_vec();
            let mass: f64 = p.iter().sum();
            let truncation = (1.0 - mass).max(0.0);
            if mass > 0.0 {
                for x in &mut p {
                    *x /= mass;
                }
            }
            let point = dot(&p, &rewards);
            let interval = if t > 0.0 {
                (dot(&cum_acc[i * n..(i + 1) * n], &rewards) / uni.rate / t).clamp(0.0, max_reward)
            } else {
                point
            };
            TransientSolution {
                time: t,
                probabilities: p,
                point_reward: point,
                interval_reward: interval,
                truncation,
            }
        })
        .collect())
}

/// Poisson pmf values `w_k = e^{-m} m^k / k!` for `k = 0..=kmax`, where
/// `kmax` is chosen so the truncated tail mass is below `epsilon`.
///
/// Uses left/right truncation with scaling for large `m` (Fox–Glynn
/// style, simplified: start at the mode with weight 1, extend both ways,
/// then normalize by the total).
fn poisson_weights(m: f64, epsilon: f64, max_terms: usize) -> Result<Vec<f64>, MarkovError> {
    let mut w = Vec::new();
    poisson_weights_into(m, epsilon, max_terms, &mut w)?;
    Ok(w)
}

/// Appends the truncated Poisson pmf for mean `m` onto `out` and returns
/// the number of terms appended. Lets grid solvers pack many series into
/// one contiguous buffer instead of allocating a `Vec` per time point.
fn poisson_weights_into(
    m: f64,
    epsilon: f64,
    max_terms: usize,
    out: &mut Vec<f64>,
) -> Result<usize, MarkovError> {
    let start = out.len();
    if m <= 0.0 {
        out.push(1.0);
        return Ok(1);
    }
    if m < 400.0 {
        // Direct recurrence is safe: e^{-400} is representable.
        out.reserve(64);
        let mut wk = (-m).exp();
        let mut acc = wk;
        out.push(wk);
        let mut k = 1usize;
        while 1.0 - acc > epsilon {
            if k > max_terms {
                out.truncate(start);
                return Err(MarkovError::InvalidOption {
                    what: format!("poisson series for m={m} exceeded {max_terms} terms"),
                });
            }
            wk *= m / k as f64;
            out.push(wk);
            acc += wk;
            k += 1;
        }
    } else {
        // Scaled: weights relative to the mode, normalized at the end.
        let mode = m.floor();
        let spread = (6.0 * m.sqrt()).ceil() as usize + 40;
        let lo = (mode as isize - spread as isize).max(0) as usize;
        let hi = mode as usize + spread;
        if hi - lo > max_terms {
            return Err(MarkovError::InvalidOption {
                what: format!("poisson series for m={m} exceeded {max_terms} terms"),
            });
        }
        out.resize(start + hi + 1, 0.0);
        let w = &mut out[start..];
        w[mode as usize] = 1.0;
        for k in (mode as usize + 1)..=hi {
            w[k] = w[k - 1] * m / k as f64;
        }
        for k in (lo..mode as usize).rev() {
            w[k] = w[k + 1] * (k as f64 + 1.0) / m;
        }
        let total: f64 = w.iter().sum();
        for x in w.iter_mut() {
            *x /= total;
        }
    }
    Ok(out.len() - start)
}

fn check_distribution(p: &[f64], n: usize) -> Result<(), MarkovError> {
    if p.len() != n {
        return Err(MarkovError::InvalidProbability {
            what: format!("initial vector has {} entries, chain has {n}", p.len()),
        });
    }
    let mut sum = 0.0;
    for &x in p {
        if !(0.0..=1.0 + 1e-12).contains(&x) || !x.is_finite() {
            return Err(MarkovError::InvalidProbability { what: format!("entry {x}") });
        }
        sum += x;
    }
    if (sum - 1.0).abs() > 1e-9 {
        return Err(MarkovError::InvalidProbability { what: format!("sum {sum} != 1") });
    }
    Ok(())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;
    use crate::ctmc::{CtmcBuilder, SteadyStateMethod};

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, lambda);
        b.add_transition(down, up, mu);
        b.build().unwrap()
    }

    /// Closed-form point availability of the 2-state machine:
    /// A(t) = mu/(l+mu) + l/(l+mu) e^{-(l+mu)t}.
    fn a_point(l: f64, mu: f64, t: f64) -> f64 {
        mu / (l + mu) + l / (l + mu) * (-(l + mu) * t).exp()
    }

    /// Closed-form interval availability of the 2-state machine.
    fn a_interval(l: f64, mu: f64, t: f64) -> f64 {
        let s = l + mu;
        mu / s + l / (s * s * t) * (1.0 - (-s * t).exp())
    }

    #[test]
    fn point_availability_matches_closed_form() {
        let (l, mu) = (0.02, 0.4);
        let c = two_state(l, mu);
        for &t in &[0.1, 1.0, 5.0, 20.0, 100.0] {
            let sol = solve(&c, &[1.0, 0.0], t, TransientOptions::default()).unwrap();
            assert!(
                (sol.point_reward - a_point(l, mu, t)).abs() < 1e-10,
                "t={t}: {} vs {}",
                sol.point_reward,
                a_point(l, mu, t)
            );
        }
    }

    #[test]
    fn interval_availability_matches_closed_form() {
        let (l, mu) = (0.05, 0.8);
        let c = two_state(l, mu);
        for &t in &[0.5, 2.0, 10.0, 50.0] {
            let sol = solve(&c, &[1.0, 0.0], t, TransientOptions::default()).unwrap();
            assert!(
                (sol.interval_reward - a_interval(l, mu, t)).abs() < 1e-9,
                "t={t}: {} vs {}",
                sol.interval_reward,
                a_interval(l, mu, t)
            );
        }
    }

    #[test]
    fn converges_to_steady_state() {
        let c = two_state(0.1, 0.9);
        let pi = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let sol = solve(&c, &[1.0, 0.0], 500.0, TransientOptions::default()).unwrap();
        for (p, q) in sol.probabilities.iter().zip(&pi) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn time_zero_returns_initial() {
        let c = two_state(0.1, 0.9);
        let sol = solve(&c, &[0.0, 1.0], 0.0, TransientOptions::default()).unwrap();
        assert_eq!(sol.probabilities, vec![0.0, 1.0]);
        assert_eq!(sol.point_reward, 0.0);
    }

    #[test]
    fn large_lt_uses_scaled_weights() {
        // lt ~ 1000: forces the scaled Poisson branch.
        let c = two_state(1.0, 1.0);
        let sol = solve(&c, &[1.0, 0.0], 500.0, TransientOptions::default()).unwrap();
        assert!((sol.point_reward - 0.5).abs() < 1e-9);
        let sum: f64 = sol.probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_inputs_rejected() {
        let c = two_state(0.1, 0.9);
        assert!(solve(&c, &[0.5, 0.4], 1.0, TransientOptions::default()).is_err());
        assert!(solve(&c, &[1.0], 1.0, TransientOptions::default()).is_err());
        assert!(solve(&c, &[1.0, 0.0], -1.0, TransientOptions::default()).is_err());
        let bad = TransientOptions { epsilon: 0.0, ..Default::default() };
        assert!(solve(&c, &[1.0, 0.0], 1.0, bad).is_err());
    }

    #[test]
    fn probabilities_remain_a_distribution() {
        let mut b = CtmcBuilder::new();
        for i in 0..5 {
            b.add_state(format!("s{i}"), (i % 2) as f64);
        }
        for i in 0..5usize {
            for j in 0..5usize {
                if i != j {
                    b.add_transition(i, j, 0.1 + (i * 5 + j) as f64 * 0.05);
                }
            }
        }
        let c = b.build().unwrap();
        let sol = solve(&c, &[0.2; 5], 3.7, TransientOptions::default()).unwrap();
        let sum: f64 = sol.probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for &p in &sol.probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn solve_many_is_pointwise_solve() {
        let c = two_state(0.3, 0.7);
        let times = [0.0, 1.0, 10.0];
        let many = solve_many(&c, &[1.0, 0.0], &times, TransientOptions::default()).unwrap();
        assert_eq!(many.len(), 3);
        for (sol, &t) in many.iter().zip(&times) {
            let single = solve(&c, &[1.0, 0.0], t, TransientOptions::default()).unwrap();
            assert_eq!(sol, &single);
        }
    }

    #[test]
    fn solve_grid_matches_solve_many() {
        let mut b = CtmcBuilder::new();
        for i in 0..4 {
            b.add_state(format!("s{i}"), (i % 2) as f64);
        }
        for i in 0..4usize {
            b.add_transition(i, (i + 1) % 4, 0.4 + i as f64 * 0.3);
        }
        b.add_transition(2, 0, 1.1);
        let c = b.build().unwrap();
        let p0 = [1.0, 0.0, 0.0, 0.0];
        let times = [0.0, 0.7, 3.0, 12.0, 80.0];
        let grid = solve_grid(&c, &p0, &times, TransientOptions::default()).unwrap();
        let many = solve_many(&c, &p0, &times, TransientOptions::default()).unwrap();
        for (g, m) in grid.iter().zip(&many) {
            assert_eq!(g.time, m.time);
            assert!((g.point_reward - m.point_reward).abs() < 1e-10);
            assert!((g.interval_reward - m.interval_reward).abs() < 1e-9);
            for (a, b) in g.probabilities.iter().zip(&m.probabilities) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_grid_unsorted_times_and_errors() {
        let c = two_state(0.1, 0.9);
        let out = solve_grid(&c, &[1.0, 0.0], &[5.0, 1.0], TransientOptions::default()).unwrap();
        assert_eq!(out[0].time, 5.0);
        assert_eq!(out[1].time, 1.0);
        assert!(solve_grid(&c, &[1.0, 0.0], &[-1.0], TransientOptions::default()).is_err());
        assert!(solve_grid(&c, &[0.9, 0.0], &[1.0], TransientOptions::default()).is_err());
    }

    #[test]
    fn poisson_weights_sum_to_one() {
        for &m in &[0.5, 5.0, 50.0, 399.0, 401.0, 5000.0] {
            let w = poisson_weights(m, 1e-12, 10_000_000).unwrap();
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "m={m}, sum={s}");
        }
    }
}
