//! Minimal dense linear algebra: row-major matrices and LU solves.
//!
//! The chains RAScad generates are small (tens to a few hundred states),
//! so a dense LU with partial pivoting is both sufficient and simple to
//! audit. Implemented in-house to keep the numerical core dependency-free.

use crate::error::MarkovError;

/// A dense, row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let n = rows.checked_mul(cols).expect("matrix size overflow");
        DenseMatrix { rows, cols, data: vec![0.0; n] }
    }

    /// Creates an identity matrix of order `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the `i`-th row as a slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the `i`-th row as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    #[must_use]
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Computes `self * v` for a column vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect()
    }

    /// Computes the row vector `v * self`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    #[must_use]
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, &a) in self.row(i).iter().enumerate() {
                out[j] += vi * a;
            }
        }
        out
    }

    /// The induced 1-norm: the maximum absolute column sum.
    pub fn one_norm(&self) -> f64 {
        let mut sums = vec![0.0f64; self.cols];
        for i in 0..self.rows {
            for (j, v) in self.row(i).iter().enumerate() {
                sums[j] += v.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// LU-factorizes the matrix with partial pivoting, retaining the
    /// factors for repeated solves against `A` and `Aᵀ` (the condition
    /// estimator needs both from one factorization).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if the matrix is not
    /// square and [`MarkovError::Singular`] if it is singular to
    /// working precision.
    pub fn factor(&self) -> Result<LuFactors, MarkovError> {
        if self.rows != self.cols {
            return Err(MarkovError::DimensionMismatch {
                what: format!("LU factor needs a square matrix, got {}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let mut p = k;
            let mut max = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max == 0.0 || !max.is_finite() {
                return Err(MarkovError::Singular);
            }
            if p != k {
                perm.swap(p, k);
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let factor = a[(i, k)] / pivot;
                a[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let akj = a[(k, j)];
                    a[(i, j)] -= factor * akj;
                }
            }
        }
        Ok(LuFactors { lu: a, perm })
    }

    /// Hager/Higham 1-norm condition-number estimate
    /// `κ₁(A) ≈ ‖A‖₁ · est(‖A⁻¹‖₁)`, with `‖A⁻¹‖₁` estimated from a
    /// handful of solves against the retained LU factors rather than an
    /// explicit inverse. Deterministic: the probe sequence is fixed, so
    /// repeated calls on the same matrix return identical bits.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Singular`] /
    /// [`MarkovError::DimensionMismatch`] from the factorization.
    pub fn condest_1norm(&self) -> Result<f64, MarkovError> {
        let n = self.rows;
        if n == 0 {
            return Err(MarkovError::DimensionMismatch {
                what: "condition estimate of an empty matrix".into(),
            });
        }
        let factors = self.factor()?;
        // Hager's algorithm: walk toward a maximizing column of A⁻¹.
        let mut x = vec![1.0 / n as f64; n];
        let mut est = 0.0f64;
        for _ in 0..5 {
            let y = factors.solve(&x); // y = A⁻¹ x
            let y_norm: f64 = y.iter().map(|v| v.abs()).sum();
            if !y_norm.is_finite() {
                est = y_norm;
                break;
            }
            let xi: Vec<f64> = y.iter().map(|v| if *v >= 0.0 { 1.0 } else { -1.0 }).collect();
            let z = factors.solve_transpose(&xi); // z = A⁻ᵀ ξ
            let (j_max, z_max) = z
                .iter()
                .map(|v| v.abs())
                .enumerate()
                .fold((0, f64::NEG_INFINITY), |acc, (j, v)| if v > acc.1 { (j, v) } else { acc });
            if y_norm >= est {
                est = y_norm;
            }
            // Converged: no column promises a larger norm than the
            // current estimate witnessed.
            if z_max <= z.iter().zip(&x).map(|(a, b)| a * b).sum::<f64>().abs() {
                break;
            }
            x = vec![0.0; n];
            x[j_max] = 1.0;
        }
        let cond = self.one_norm() * est;
        rascad_obs::record_value("markov.lu.condest", cond);
        Ok(cond)
    }

    /// Solves `self * x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if the matrix is not
    /// square or `b.len() != rows`, and [`MarkovError::Singular`] if
    /// the matrix is singular to working precision.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if self.rows != self.cols {
            return Err(MarkovError::DimensionMismatch {
                what: format!("LU solve needs a square matrix, got {}x{}", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                what: format!(
                    "right-hand side has {} entries for a {}x{} matrix",
                    b.len(),
                    self.rows,
                    self.rows
                ),
            });
        }
        let mut lu_span = rascad_obs::span("markov.lu_solve");
        let zeros_before =
            if lu_span.is_enabled() { self.data.iter().filter(|&&v| v == 0.0).count() } else { 0 };
        let n = self.rows;
        let mut a = self.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut trace = rascad_obs::trace::begin("lu", "pivot", n);

        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut p = k;
            let mut max = a[(k, k)].abs();
            for i in (k + 1)..n {
                let v = a[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            trace.step(k + 1, max);
            if max == 0.0 || !max.is_finite() {
                trace.finish("singular");
                return Err(MarkovError::Singular);
            }
            if p != k {
                perm.swap(p, k);
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
                x.swap(p, k);
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let factor = a[(i, k)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[(i, k)] = 0.0;
                for j in (k + 1)..n {
                    let akj = a[(k, j)];
                    a[(i, j)] -= factor * akj;
                }
                x[i] -= factor * x[k];
            }
        }

        // Back substitution.
        for k in (0..n).rev() {
            let mut s = x[k];
            for j in (k + 1)..n {
                s -= a[(k, j)] * x[j];
            }
            let pivot = a[(k, k)];
            if pivot == 0.0 || !pivot.is_finite() {
                trace.finish("singular");
                return Err(MarkovError::Singular);
            }
            x[k] = s / pivot;
        }
        trace.finish("done");
        if lu_span.is_enabled() {
            // LU fill-in: zero entries of the input that became
            // non-zero in the factors.
            let zeros_after = a.data.iter().filter(|&&v| v == 0.0).count();
            let fill = zeros_before.saturating_sub(zeros_after);
            lu_span.record("n", n);
            lu_span.record("fill", fill);
            rascad_obs::record_value("markov.lu.fill", fill as f64);
            rascad_obs::counter_with("markov.solves", &[("method", "lu")], 1);
        }
        Ok(x)
    }
}

/// Retained LU factors of a square matrix: `P·A = L·U` packed into one
/// matrix (unit-diagonal `L` below, `U` on and above) plus the row
/// permutation. Obtained from [`DenseMatrix::factor`].
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Order of the factored matrix.
    #[must_use]
    pub fn order(&self) -> usize {
        self.lu.rows
    }

    /// Solves `A·x = b` from the retained factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored order.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "dimension mismatch");
        // x = P·b, then L·y = x forward, then U·x = y backward.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for k in 0..n {
            for i in (k + 1)..n {
                x[i] -= self.lu[(i, k)] * x[k];
            }
        }
        for k in (0..n).rev() {
            let mut s = x[k];
            for (j, &xj) in x.iter().enumerate().skip(k + 1) {
                s -= self.lu[(k, j)] * xj;
            }
            x[k] = s / self.lu[(k, k)];
        }
        x
    }

    /// Solves `Aᵀ·x = b` from the same factors:
    /// `Aᵀ = Uᵀ·Lᵀ·P`, so solve `Uᵀ·y = b`, `Lᵀ·z = y`, `x = Pᵀ·z`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored order.
    #[must_use]
    pub fn solve_transpose(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut y: Vec<f64> = b.to_vec();
        // Uᵀ is lower triangular: forward substitution with division.
        for k in 0..n {
            let mut s = y[k];
            for (j, &yj) in y.iter().enumerate().take(k) {
                s -= self.lu[(j, k)] * yj;
            }
            y[k] = s / self.lu[(k, k)];
        }
        // Lᵀ is unit upper triangular: backward substitution.
        for k in (0..n).rev() {
            for j in (k + 1)..n {
                let ljk = self.lu[(j, k)];
                y[k] -= ljk * y[j];
            }
        }
        // Undo the row permutation: x[perm[i]] = z[i].
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        x
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    #[test]
    fn solve_rejects_bad_shapes() {
        let m = DenseMatrix::zeros(2, 3);
        assert!(matches!(m.solve(&[1.0, 2.0]), Err(MarkovError::DimensionMismatch { .. })));
        let m = DenseMatrix::identity(2);
        assert!(matches!(m.solve(&[1.0, 2.0, 3.0]), Err(MarkovError::DimensionMismatch { .. })));
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let m = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.solve(&b).unwrap(), b);
    }

    #[test]
    fn solves_small_system() {
        // 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3
        let m = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero pivot forces a row swap.
        let m = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(m.solve(&[1.0, 2.0]), Err(MarkovError::Singular));
    }

    #[test]
    fn mul_vec_and_vec_mul_agree_with_transpose() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = vec![1.0, -1.0];
        let left = m.vec_mul(&v);
        let right = m.transpose().mul_vec(&v);
        assert_eq!(left, right);
        assert_eq!(left, vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn ill_conditioned_but_solvable() {
        let eps = 1e-12;
        let m = DenseMatrix::from_rows(&[vec![eps, 1.0], vec![1.0, 1.0]]);
        let x = m.solve(&[1.0, 2.0]).unwrap();
        // Exact solution: x0 = 1/(1-eps), x1 = (1-2eps)/(1-eps).
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_rows_roundtrip_indexing() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn retained_factors_match_direct_solve() {
        let m = DenseMatrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![1.0, -1.0, 0.5],
            vec![3.0, 0.25, -2.0],
        ]);
        let b = [1.0, -2.0, 4.0];
        let f = m.factor().unwrap();
        let direct = m.solve(&b).unwrap();
        let via_factors = f.solve(&b);
        for (a, c) in direct.iter().zip(&via_factors) {
            assert!((a - c).abs() < 1e-12, "{a} vs {c}");
        }
        // Aᵀ·x = b through the same factors equals factoring Aᵀ.
        let xt = f.solve_transpose(&b);
        let direct_t = m.transpose().solve(&b).unwrap();
        for (a, c) in direct_t.iter().zip(&xt) {
            assert!((a - c).abs() < 1e-12, "{a} vs {c}");
        }
    }

    #[test]
    fn factor_reports_singular() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(m.factor(), Err(MarkovError::Singular)));
    }

    #[test]
    fn condest_of_identity_is_one() {
        let m = DenseMatrix::identity(6);
        let c = m.condest_1norm().unwrap();
        assert!((c - 1.0).abs() < 1e-12, "{c}");
    }

    #[test]
    fn condest_tracks_diagonal_spread() {
        // diag(1, 1e-8): κ₁ is exactly 1e8, and Hager's estimator is
        // exact for diagonal matrices.
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1e-8]]);
        let c = m.condest_1norm().unwrap();
        assert!((c - 1e8).abs() / 1e8 < 1e-9, "{c}");
    }

    #[test]
    fn condest_is_a_lower_bound_within_reach_of_true_kappa() {
        // Hand-computed 3x3: A = [[2,1,0],[1,2,1],[0,1,2]].
        // ‖A‖₁ = 4. A⁻¹ = 1/4·[[3,-2,1],[-2,4,-2],[1,-2,3]],
        // ‖A⁻¹‖₁ = 2, so κ₁ = 8.
        let m = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 2.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let c = m.condest_1norm().unwrap();
        assert!(c <= 8.0 + 1e-9, "estimate {c} exceeds true κ₁");
        assert!(c >= 8.0 * 0.5, "estimate {c} too far below true κ₁ 8");
    }

    #[test]
    fn random_spd_solve_residual_small() {
        // Deterministic pseudo-random fill; diagonally dominant so it is
        // well conditioned.
        let n = 25;
        let mut m = DenseMatrix::zeros(n, n);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            let mut sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rnd();
                    m[(i, j)] = v;
                    sum += v.abs();
                }
            }
            m[(i, i)] = sum + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = m.solve(&b).unwrap();
        let r = m.mul_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9, "residual too large");
        }
    }
}
