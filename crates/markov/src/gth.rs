//! Grassmann–Taksar–Heyman (GTH) stationary-distribution algorithm.
//!
//! GTH is a Gaussian-elimination variant that never subtracts, so no
//! cancellation can occur; it is the method of choice for stiff
//! availability chains whose rates span ten or more orders of magnitude
//! (FIT-scale failure rates against per-minute repair rates, as in
//! RAScad models).

use crate::ctmc::{Ctmc, SolveOptions};
use crate::dense::DenseMatrix;
use crate::error::MarkovError;

/// How many elimination pivots pass between wall-clock checks in
/// [`stationary_gth_with`]. Each pivot is `O(k^2)` work, so checking
/// every pivot would be noise; every 32nd keeps the overdraft bounded.
const GTH_CLOCK_STRIDE: usize = 32;

/// Computes the stationary distribution of an irreducible CTMC by GTH
/// elimination on its generator.
///
/// # Errors
///
/// Returns [`MarkovError::Singular`] if elimination encounters a zero
/// pivot (which cannot happen for a truly irreducible generator but can
/// arise from pathological inputs).
pub fn stationary_gth(chain: &Ctmc) -> Result<Vec<f64>, MarkovError> {
    let q = chain.generator().to_dense();
    stationary_gth_dense(&q)
}

/// [`stationary_gth`] bounded by the wall-clock budget in `options`
/// (the iteration budget does not apply — elimination is direct).
///
/// # Errors
///
/// The [`stationary_gth`] errors, plus [`MarkovError::Timeout`] when
/// the budget expires mid-elimination.
pub fn stationary_gth_with(chain: &Ctmc, options: &SolveOptions) -> Result<Vec<f64>, MarkovError> {
    let q = chain.generator().to_dense();
    stationary_gth_dense_with(&q, options)
}

/// GTH elimination on a dense generator matrix (rows sum to zero,
/// off-diagonals non-negative).
///
/// # Errors
///
/// Returns [`MarkovError::DimensionMismatch`] for a non-square input,
/// [`MarkovError::EmptyChain`] for a 0×0 input, and
/// [`MarkovError::Singular`] on a zero pivot.
pub fn stationary_gth_dense(q: &DenseMatrix) -> Result<Vec<f64>, MarkovError> {
    stationary_gth_dense_with(q, &SolveOptions { wall_clock: None, ..SolveOptions::default() })
}

/// [`stationary_gth_dense`] with a wall-clock budget, checked every
/// [`GTH_CLOCK_STRIDE`] elimination pivots.
///
/// # Errors
///
/// The [`stationary_gth_dense`] errors, plus [`MarkovError::Timeout`]
/// when the budget expires mid-elimination.
pub fn stationary_gth_dense_with(
    q: &DenseMatrix,
    options: &SolveOptions,
) -> Result<Vec<f64>, MarkovError> {
    let n = q.rows();
    if n != q.cols() {
        return Err(MarkovError::DimensionMismatch {
            what: format!("generator must be square, got {n}x{}", q.cols()),
        });
    }
    if n == 0 {
        return Err(MarkovError::EmptyChain);
    }
    if n == 1 {
        return Ok(vec![1.0]);
    }
    let mut span = rascad_obs::span("markov.gth");
    span.record("states", n);

    // Work on a copy holding only the off-diagonal rates; the diagonal is
    // re-derived as the (positive) row sum of the remaining states, which
    // is what makes GTH subtraction-free.
    let mut a = q.clone();

    // Forward elimination: eliminate states n-1, n-2, ..., 1. `pivots[k]`
    // keeps the total censored exit rate of state k at elimination time,
    // needed again during back substitution.
    let mut pivots = vec![0.0; n];
    let mut min_pivot = f64::INFINITY;
    let start = std::time::Instant::now();
    let mut trace = rascad_obs::trace::begin("gth", "pivot", n);
    for (step, k) in (1..n).rev().enumerate() {
        if step % GTH_CLOCK_STRIDE == 0 {
            if options.cancelled() {
                trace.finish("cancelled");
                return Err(options.cancelled_error("gth", step));
            }
            let elapsed = start.elapsed();
            if options.over_budget(elapsed) {
                trace.finish("timeout");
                return Err(options.timeout_error("gth", step, elapsed));
            }
        }
        // s = total rate out of k into states 0..k.
        let s: f64 = (0..k).map(|j| a[(k, j)]).sum();
        trace.step(step + 1, s);
        if s <= 0.0 || !s.is_finite() {
            trace.finish("singular");
            return Err(MarkovError::Singular);
        }
        min_pivot = min_pivot.min(s);
        pivots[k] = s;
        for j in 0..k {
            a[(k, j)] /= s;
        }
        for i in 0..k {
            let aik = a[(i, k)];
            if aik == 0.0 {
                continue;
            }
            for j in 0..k {
                if i == j {
                    continue;
                }
                let akj = a[(k, j)];
                a[(i, j)] += aik * akj;
            }
        }
    }

    // Back substitution: flow balance of the censored chain on {0..k}
    // gives pi[k] * s_k = sum_{i<k} pi[i] * q[i][k].
    let mut pi = vec![0.0; n];
    pi[0] = 1.0;
    for k in 1..n {
        let mut s = 0.0;
        for i in 0..k {
            s += pi[i] * a[(i, k)];
        }
        pi[k] = s / pivots[k];
    }

    let total: f64 = pi.iter().sum();
    if !(total.is_finite() && total > 0.0) {
        trace.finish("singular");
        return Err(MarkovError::Singular);
    }
    trace.finish("done");
    for p in &mut pi {
        *p /= total;
    }
    // The smallest censored exit rate is the conditioning diagnostic:
    // tiny pivots mean nearly-disconnected states.
    span.record("min_pivot", min_pivot);
    rascad_obs::record_value("markov.gth.min_pivot", min_pivot);
    rascad_obs::record_value("markov.gth.states", n as f64);
    rascad_obs::counter_with("markov.solves", &[("method", "gth")], 1);
    Ok(pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::{CtmcBuilder, SteadyStateMethod};

    #[test]
    fn gth_matches_closed_form_birth_death() {
        // Birth-death chain: pi_i proportional to prod(lambda_j/mu_{j+1}).
        let lambdas = [3.0, 2.0, 1.0];
        let mus = [4.0, 5.0, 6.0];
        let mut b = CtmcBuilder::new();
        for i in 0..4 {
            b.add_state(format!("n{i}"), 1.0);
        }
        for i in 0..3 {
            b.add_transition(i, i + 1, lambdas[i]);
            b.add_transition(i + 1, i, mus[i]);
        }
        let chain = b.build().unwrap();
        let pi = stationary_gth(&chain).unwrap();
        let mut expect = vec![1.0];
        for i in 0..3 {
            let last = *expect.last().unwrap();
            expect.push(last * lambdas[i] / mus[i]);
        }
        let z: f64 = expect.iter().sum();
        for (p, e) in pi.iter().zip(&expect) {
            assert!((p - e / z).abs() < 1e-14);
        }
    }

    #[test]
    fn gth_handles_stiff_rates() {
        // Rates spanning 12 orders of magnitude: a FIT-scale failure rate
        // versus a per-minute repair rate.
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        let repair = b.add_state("repair", 0.0);
        b.add_transition(up, down, 1e-9);
        b.add_transition(down, repair, 12.0);
        b.add_transition(repair, up, 4.0);
        let chain = b.build().unwrap();
        let pi = chain.steady_state(SteadyStateMethod::Gth).unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-15);
        // Unavailability ~ 1e-9 * (1/12 + 1/4).
        let unavail = pi[1] + pi[2];
        assert!((unavail - 1e-9 * (1.0 / 12.0 + 0.25)).abs() < 1e-18);
    }

    #[test]
    fn gth_pivot_trace_matches_hand_computed_chain() {
        // Cycle up -> down (1e-9/h), down -> repair (12/h),
        // repair -> up (4/h). GTH eliminates the highest-numbered state
        // first: state 2 exits into {0,1} at rate 4 (pivot 1), and after
        // censoring, state 1's exit rate into {0} is 12·(4/4) = 12
        // (pivot 2). min_pivot is therefore exactly 4.
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        let repair = b.add_state("repair", 0.0);
        b.add_transition(up, down, 1e-9);
        b.add_transition(down, repair, 12.0);
        b.add_transition(repair, up, 4.0);
        let chain = b.build().unwrap();

        rascad_obs::trace::arm();
        stationary_gth(&chain).unwrap();
        let traces = rascad_obs::trace::solves();
        let t = traces
            .iter()
            .rev()
            .find(|t| t.method == "gth" && t.states == 3)
            .expect("armed GTH solve commits a trace");
        assert_eq!((t.metric, t.outcome, t.total_steps), ("pivot", "done", 2));
        assert_eq!((t.steps[0].index, t.steps[0].value), (1, 4.0));
        assert_eq!((t.steps[1].index, t.steps[1].value), (2, 12.0));
        rascad_obs::trace::disarm();
    }

    #[test]
    fn gth_single_state() {
        let q = DenseMatrix::zeros(1, 1);
        assert_eq!(stationary_gth_dense(&q).unwrap(), vec![1.0]);
    }

    #[test]
    fn gth_empty_rejected() {
        let q = DenseMatrix::zeros(0, 0);
        assert!(matches!(stationary_gth_dense(&q), Err(MarkovError::EmptyChain)));
    }

    #[test]
    fn gth_non_square_rejected() {
        let q = DenseMatrix::zeros(2, 3);
        match stationary_gth_dense(&q) {
            Err(MarkovError::DimensionMismatch { what }) => {
                assert!(what.contains("2x3"), "{what}");
            }
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn gth_zero_pivot_detected() {
        // State 1 has no outgoing rate at all: elimination hits s = 0.
        let q = DenseMatrix::from_rows(&[vec![-1.0, 1.0], vec![0.0, 0.0]]);
        assert!(matches!(stationary_gth_dense(&q), Err(MarkovError::Singular)));
    }
}
