//! Absorbing-chain (reliability) analysis.
//!
//! For the *reliability* model RAScad reports MTTF, reliability at the
//! mission time `T`, interval failure rate over `(0, T)`, and the hazard
//! rate for a time increment. These come from the chain obtained by
//! making every down state absorbing: the time to absorption is the time
//! to first system failure.

use crate::ctmc::{Ctmc, CtmcBuilder, StateId};
use crate::dense::DenseMatrix;
use crate::error::MarkovError;
use crate::transient::{self, TransientOptions};

/// Reliability measures of a chain whose down states are absorbing.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsorbingAnalysis {
    /// Mean time to (first) failure from the given initial distribution.
    pub mttf: f64,
    /// Ids of the transient (up) states in the original chain.
    pub up_states: Vec<StateId>,
    /// Ids of the absorbing (down) states in the original chain.
    pub down_states: Vec<StateId>,
}

/// A sampled reliability curve `R(t)` with derived failure measures.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityCurve {
    /// Sample times.
    pub times: Vec<f64>,
    /// `R(t)`: probability the system has not yet failed by each time.
    pub reliability: Vec<f64>,
    /// Interval failure rate over `(0, t)`: `-ln R(t) / t` (the constant
    /// rate that would produce the same `R(t)`).
    pub interval_failure_rate: Vec<f64>,
    /// Hazard rate at each time, estimated over the local increment:
    /// `h ≈ (R(t_i) - R(t_{i+1})) / (Δt · R(t_i))`, reported at the
    /// left endpoint (last point repeats the previous estimate).
    pub hazard_rate: Vec<f64>,
}

/// Builds the absorbing ("reliability") variant of `chain`: all
/// transitions out of down states are removed, so down states absorb.
#[must_use]
pub fn make_absorbing(chain: &Ctmc) -> Ctmc {
    let up: Vec<bool> = chain.states().iter().map(|s| s.reward > 0.0).collect();
    let mut b = CtmcBuilder::new();
    for s in chain.states() {
        b.add_state(s.label.clone(), s.reward);
    }
    for t in chain.transitions() {
        if up[t.from] {
            b.add_transition(t.from, t.to, t.rate);
        }
    }
    b.build().expect("absorbing variant of a valid chain is valid")
}

/// Computes the MTTF from an initial distribution concentrated on state
/// `start` (usually the all-working `Ok` state).
///
/// Solves `(-Q_UU) m = 1` where `Q_UU` is the generator restricted to up
/// states and `m` the vector of expected absorption times.
///
/// # Errors
///
/// * [`MarkovError::MissingStates`] if the chain has no up or no down
///   states, or if `start` is not an up state.
/// * [`MarkovError::Singular`] if some up state cannot reach any down
///   state (MTTF would be infinite).
pub fn mttf(chain: &Ctmc, start: StateId) -> Result<AbsorbingAnalysis, MarkovError> {
    let up_states = chain.up_states();
    let down_states = chain.down_states();
    if up_states.is_empty() {
        return Err(MarkovError::MissingStates { what: "no up states".into() });
    }
    if down_states.is_empty() {
        return Err(MarkovError::MissingStates { what: "no down (absorbing) states".into() });
    }
    let Some(start_pos) = up_states.iter().position(|&s| s == start) else {
        return Err(MarkovError::MissingStates {
            what: format!("start state {start} is not an up state"),
        });
    };

    // Index map original -> position among up states.
    let mut pos = vec![usize::MAX; chain.len()];
    for (i, &s) in up_states.iter().enumerate() {
        pos[s] = i;
    }
    let nu = up_states.len();
    let mut a = DenseMatrix::zeros(nu, nu); // -Q_UU
    for t in chain.transitions() {
        let pf = pos[t.from];
        if pf == usize::MAX {
            continue;
        }
        a[(pf, pf)] += t.rate; // -( -sum of exit rates )
        let pt = pos[t.to];
        if pt != usize::MAX {
            a[(pf, pt)] -= t.rate;
        }
    }
    let ones = vec![1.0; nu];
    let m = a.solve(&ones)?;
    let value = m[start_pos];
    if !value.is_finite() || value < 0.0 {
        return Err(MarkovError::Singular);
    }
    Ok(AbsorbingAnalysis { mttf: value, up_states, down_states })
}

/// Probability that the *first* system failure lands in each down
/// state, starting from `start` — failure-mode attribution.
///
/// Solves `B = (−Q_UU)⁻¹ Q_UD` row by row: entry `(u, d)` is the
/// probability of being absorbed in down state `d` from up state `u`.
///
/// Returns `(down_state_id, probability)` pairs summing to 1, sorted by
/// probability descending.
///
/// # Errors
///
/// Same conditions as [`mttf`].
pub fn failure_modes(chain: &Ctmc, start: StateId) -> Result<Vec<(StateId, f64)>, MarkovError> {
    let up_states = chain.up_states();
    let down_states = chain.down_states();
    if up_states.is_empty() {
        return Err(MarkovError::MissingStates { what: "no up states".into() });
    }
    if down_states.is_empty() {
        return Err(MarkovError::MissingStates { what: "no down (absorbing) states".into() });
    }
    let Some(start_pos) = up_states.iter().position(|&s| s == start) else {
        return Err(MarkovError::MissingStates {
            what: format!("start state {start} is not an up state"),
        });
    };

    let mut pos = vec![usize::MAX; chain.len()];
    for (i, &s) in up_states.iter().enumerate() {
        pos[s] = i;
    }
    let nu = up_states.len();
    let mut a = DenseMatrix::zeros(nu, nu); // -Q_UU
    for t in chain.transitions() {
        let pf = pos[t.from];
        if pf == usize::MAX {
            continue;
        }
        a[(pf, pf)] += t.rate;
        let pt = pos[t.to];
        if pt != usize::MAX {
            a[(pf, pt)] -= t.rate;
        }
    }

    let mut out = Vec::with_capacity(down_states.len());
    for &d in &down_states {
        // Right-hand side: rates from each up state into d.
        let mut b = vec![0.0; nu];
        for t in chain.transitions() {
            if t.to == d {
                let pf = pos[t.from];
                if pf != usize::MAX {
                    b[pf] += t.rate;
                }
            }
        }
        let x = a.solve(&b)?;
        out.push((d, x[start_pos].clamp(0.0, 1.0)));
    }
    // Normalize away roundoff and sort by contribution.
    let total: f64 = out.iter().map(|&(_, p)| p).sum();
    if total > 0.0 {
        for (_, p) in &mut out {
            *p /= total;
        }
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1));
    Ok(out)
}

/// Reliability `R(t)` at a single mission time, starting from `start`.
///
/// # Errors
///
/// Propagates [`MarkovError`] from the transient solver, and
/// [`MarkovError::MissingStates`] as in [`mttf`].
pub fn reliability_at(chain: &Ctmc, start: StateId, t: f64) -> Result<f64, MarkovError> {
    let curve = reliability_curve(chain, start, &[t])?;
    Ok(curve.reliability[0])
}

/// Samples the reliability curve at the given times.
///
/// # Errors
///
/// * [`MarkovError::MissingStates`] if the chain has no down states or
///   `start` is not an up state.
/// * Errors from the transient solver for invalid times.
pub fn reliability_curve(
    chain: &Ctmc,
    start: StateId,
    times: &[f64],
) -> Result<ReliabilityCurve, MarkovError> {
    if chain.down_states().is_empty() {
        return Err(MarkovError::MissingStates { what: "no down states".into() });
    }
    if start >= chain.len() || chain.states()[start].reward == 0.0 {
        return Err(MarkovError::MissingStates {
            what: format!("start state {start} is not an up state"),
        });
    }
    let abs = make_absorbing(chain);
    let mut p0 = vec![0.0; abs.len()];
    p0[start] = 1.0;
    let mut rel = Vec::with_capacity(times.len());
    for &t in times {
        let sol = transient::solve(&abs, &p0, t, TransientOptions::default())?;
        // R(t) = probability of still being in an up state.
        let r: f64 = abs.up_states().iter().map(|&s| sol.probabilities[s]).sum();
        rel.push(r.clamp(0.0, 1.0));
    }

    let interval_failure_rate = times
        .iter()
        .zip(&rel)
        .map(|(&t, &r)| {
            if t <= 0.0 {
                0.0
            } else if r <= 0.0 {
                f64::INFINITY
            } else {
                -r.ln() / t
            }
        })
        .collect();

    let mut hazard_rate = Vec::with_capacity(times.len());
    for i in 0..times.len() {
        if i + 1 < times.len() {
            let dt = times[i + 1] - times[i];
            let h =
                if dt > 0.0 && rel[i] > 0.0 { (rel[i] - rel[i + 1]) / (dt * rel[i]) } else { 0.0 };
            hazard_rate.push(h.max(0.0));
        } else {
            hazard_rate.push(*hazard_rate.last().unwrap_or(&0.0));
        }
    }

    Ok(ReliabilityCurve {
        times: times.to_vec(),
        reliability: rel,
        interval_failure_rate,
        hazard_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::CtmcBuilder;

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, lambda);
        b.add_transition(down, up, mu);
        b.build().unwrap()
    }

    #[test]
    fn mttf_of_single_component_is_one_over_lambda() {
        let c = two_state(0.01, 5.0);
        let a = mttf(&c, 0).unwrap();
        assert!((a.mttf - 100.0).abs() < 1e-9);
        assert_eq!(a.up_states, vec![0]);
        assert_eq!(a.down_states, vec![1]);
    }

    #[test]
    fn mttf_of_parallel_pair() {
        // Two hot-spare components, no repair before system failure:
        // states 2-up, 1-up, 0-up(absorbing); MTTF = 1/(2l) + 1/l.
        let l = 0.2;
        let mut b = CtmcBuilder::new();
        let s2 = b.add_state("2up", 1.0);
        let s1 = b.add_state("1up", 1.0);
        let s0 = b.add_state("0up", 0.0);
        b.add_transition(s2, s1, 2.0 * l);
        b.add_transition(s1, s0, l);
        b.add_transition(s0, s2, 1.0); // repair (ignored by reliability model)
        let c = b.build().unwrap();
        let a = mttf(&c, s2).unwrap();
        assert!((a.mttf - (1.0 / (2.0 * l) + 1.0 / l)).abs() < 1e-9);
    }

    #[test]
    fn mttf_with_repair_in_up_states() {
        // 2-up <-> 1-up with repair mu, then failure to absorbing.
        // Known closed form: MTTF = (3l + mu) / (2 l^2).
        let (l, mu) = (0.1, 2.0);
        let mut b = CtmcBuilder::new();
        let s2 = b.add_state("2up", 1.0);
        let s1 = b.add_state("1up", 1.0);
        let s0 = b.add_state("down", 0.0);
        b.add_transition(s2, s1, 2.0 * l);
        b.add_transition(s1, s2, mu);
        b.add_transition(s1, s0, l);
        b.add_transition(s0, s1, 1.0);
        let c = b.build().unwrap();
        let a = mttf(&c, s2).unwrap();
        assert!((a.mttf - (3.0 * l + mu) / (2.0 * l * l)).abs() < 1e-7);
    }

    #[test]
    fn reliability_is_exponential_for_single_component() {
        let l = 0.05;
        let c = two_state(l, 3.0);
        let times = [1.0, 5.0, 10.0, 50.0];
        let curve = reliability_curve(&c, 0, &times).unwrap();
        for (i, &t) in times.iter().enumerate() {
            assert!((curve.reliability[i] - (-l * t).exp()).abs() < 1e-10);
            // Constant hazard = lambda; interval failure rate = lambda.
            assert!((curve.interval_failure_rate[i] - l).abs() < 1e-9);
        }
        // Hazard estimates need a fine grid: with constant hazard l the
        // finite-difference estimate is (1 - e^{-l dt}) / dt.
        let fine: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let fine_curve = reliability_curve(&c, 0, &fine).unwrap();
        for &h in &fine_curve.hazard_rate {
            assert!((h - l).abs() < l * 0.01, "h={h}");
        }
    }

    #[test]
    fn reliability_at_zero_is_one() {
        let c = two_state(0.1, 1.0);
        assert!((reliability_at(&c, 0, 0.0).unwrap() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn no_down_states_rejected() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a", 1.0);
        let c = b.add_state("b", 1.0);
        b.add_transition(a, c, 1.0);
        b.add_transition(c, a, 1.0);
        let chain = b.build().unwrap();
        assert!(matches!(mttf(&chain, 0), Err(MarkovError::MissingStates { .. })));
        assert!(matches!(
            reliability_curve(&chain, 0, &[1.0]),
            Err(MarkovError::MissingStates { .. })
        ));
    }

    #[test]
    fn start_must_be_up() {
        let c = two_state(0.1, 1.0);
        assert!(matches!(mttf(&c, 1), Err(MarkovError::MissingStates { .. })));
        assert!(matches!(reliability_curve(&c, 1, &[1.0]), Err(MarkovError::MissingStates { .. })));
    }

    #[test]
    fn failure_modes_sum_to_one_and_rank_correctly() {
        // Up state with two competing failure modes: fast (rate 3) and
        // slow (rate 1). First-failure attribution must be 3/4 vs 1/4.
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let fast = b.add_state("fast", 0.0);
        let slow = b.add_state("slow", 0.0);
        b.add_transition(up, fast, 3.0);
        b.add_transition(up, slow, 1.0);
        b.add_transition(fast, up, 10.0);
        b.add_transition(slow, up, 10.0);
        let c = b.build().unwrap();
        let modes = failure_modes(&c, up).unwrap();
        assert_eq!(modes[0].0, fast);
        assert!((modes[0].1 - 0.75).abs() < 1e-12);
        assert!((modes[1].1 - 0.25).abs() < 1e-12);
        let sum: f64 = modes.iter().map(|&(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failure_modes_through_intermediate_up_states() {
        // up -> degraded -> down_b, up -> down_a directly.
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let degraded = b.add_state("degraded", 1.0);
        let down_a = b.add_state("down_a", 0.0);
        let down_b = b.add_state("down_b", 0.0);
        b.add_transition(up, down_a, 1.0);
        b.add_transition(up, degraded, 1.0);
        b.add_transition(degraded, down_b, 5.0);
        b.add_transition(degraded, up, 0.0001);
        b.add_transition(down_a, up, 1.0);
        b.add_transition(down_b, up, 1.0);
        let c = b.build().unwrap();
        let modes = failure_modes(&c, up).unwrap();
        // From up: 1/2 direct to a; 1/2 to degraded, which almost surely
        // falls to b.
        let map: std::collections::HashMap<_, _> = modes.into_iter().collect();
        assert!((map[&down_a] - 0.5).abs() < 1e-4);
        assert!((map[&down_b] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn failure_modes_errors() {
        let c = two_state(0.1, 1.0);
        assert!(failure_modes(&c, 1).is_err()); // start not up
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a", 1.0);
        let x = b.add_state("b", 1.0);
        b.add_transition(a, x, 1.0);
        b.add_transition(x, a, 1.0);
        let all_up = b.build().unwrap();
        assert!(failure_modes(&all_up, 0).is_err());
    }

    #[test]
    fn mttf_matches_reliability_integral() {
        // MTTF = integral of R(t); check with a fine trapezoid.
        let (l, mu) = (0.5, 4.0);
        let mut b = CtmcBuilder::new();
        let s2 = b.add_state("2up", 1.0);
        let s1 = b.add_state("1up", 1.0);
        let s0 = b.add_state("down", 0.0);
        b.add_transition(s2, s1, 2.0 * l);
        b.add_transition(s1, s2, mu);
        b.add_transition(s1, s0, l);
        b.add_transition(s0, s2, 0.5);
        let c = b.build().unwrap();
        let analytic = mttf(&c, 0).unwrap().mttf;
        let times: Vec<f64> = (0..=4000).map(|i| i as f64 * 0.05).collect();
        let curve = reliability_curve(&c, 0, &times).unwrap();
        let mut integral = 0.0;
        for i in 1..times.len() {
            integral += 0.5 * (curve.reliability[i] + curve.reliability[i - 1]) * 0.05;
        }
        assert!(
            (integral - analytic).abs() / analytic < 1e-3,
            "integral {integral} vs analytic {analytic}"
        );
    }
}
