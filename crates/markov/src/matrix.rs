//! Sparse matrix support (compressed sparse row) for transition-rate
//! matrices.
//!
//! The paper notes that "due to the variation on the model size, the
//! internal matrix representation, instead of the graphical
//! representation, of the Markov models are generated". This module is
//! that internal representation: chains are assembled as triplets and
//! compressed to CSR for the iterative (uniformization) solver.

use crate::dense::DenseMatrix;

/// A sparse matrix in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers: entries of row `i` live in `indices/values[row_ptr[i]..row_ptr[i+1]]`.
    row_ptr: Vec<usize>,
    /// Column index of each stored entry.
    indices: Vec<usize>,
    /// Value of each stored entry.
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    #[must_use]
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        // One pass validates every coordinate and detects (row, col)
        // order; builders that emit row-major triplets (the common case
        // for generator assembly) then take the zero-copy fast path.
        let mut sorted = true;
        let mut prev = (0usize, 0usize);
        for (i, &(r, c, _)) in triplets.iter().enumerate() {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            if i > 0 && (r, c) < prev {
                sorted = false;
            }
            prev = (r, c);
        }
        if sorted {
            return Self::from_sorted_triplets(rows, cols, triplets);
        }
        // Stable sort keeps duplicate coordinates in insertion order, so
        // the summation order (and thus the exact f64 result) does not
        // depend on the sort's internals.
        let mut owned = triplets.to_vec();
        owned.sort_by_key(|&(r, c, _)| (r, c));
        Self::from_sorted_triplets(rows, cols, &owned)
    }

    /// Builds CSR from triplets already sorted by `(row, col)` with all
    /// coordinates validated; the build loop itself is assertion-free.
    fn from_sorted_triplets(rows: usize, cols: usize, trips: &[(usize, usize, f64)]) -> Self {
        let mut row_ptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(trips.len());
        let mut values = Vec::with_capacity(trips.len());
        let mut i = 0;
        for row in 0..rows {
            while i < trips.len() && trips[i].0 == row {
                let c = trips[i].1;
                let mut v = 0.0;
                while i < trips.len() && trips[i].0 == row && trips[i].1 == c {
                    v += trips[i].2;
                    i += 1;
                }
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            row_ptr[row + 1] = indices.len();
        }
        SparseMatrix { rows, cols, row_ptr, indices, values }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the stored entries of row `i` as `(col, value)`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.indices[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Returns the entry at `(i, j)` (zero if not stored).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row_entries(i).find(|&(c, _)| c == j).map_or(0.0, |(_, v)| v)
    }

    /// Computes the row vector `v * self` (the orientation used by
    /// uniformization, where `v` is a probability row vector).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()`.
    #[must_use]
    pub fn vec_mul(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (c, a) in self.row_entries(i) {
                out[c] += vi * a;
            }
        }
        out
    }

    /// [`vec_mul`](Self::vec_mul) writing into a caller-owned buffer
    /// instead of allocating — the SpMV the iterative hot loops (power
    /// iteration, uniformization series, Gauss–Seidel residual checks)
    /// use so a 10^5-state solve does zero allocations per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.rows()` or `out.len() != self.cols()`.
    pub fn vec_mul_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        assert_eq!(out.len(), self.cols, "output dimension mismatch");
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (c, a) in self.row_entries(i) {
                out[c] += vi * a;
            }
        }
    }

    /// Computes `self * v` for a column vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows).map(|i| self.row_entries(i).map(|(c, a)| a * v[c]).sum()).collect()
    }

    /// [`mul_vec`](Self::mul_vec) writing into a caller-owned buffer
    /// instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        assert_eq!(out.len(), self.rows, "output dimension mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row_entries(i).map(|(c, a)| a * v[c]).sum();
        }
    }

    /// The transpose in CSR form (row `i` of the result holds column `i`
    /// of `self`). For a generator `Q` this gives the inflow orientation
    /// the Gauss–Seidel sweeps need: row `i` of `Qᵀ` lists the rates
    /// *into* state `i`.
    ///
    /// Built with a counting pass instead of re-sorting triplets, so it
    /// is `O(nnz + rows + cols)`.
    #[must_use]
    pub fn transpose(&self) -> SparseMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            row_ptr[c + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut next = row_ptr.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                let slot = next[c];
                indices[slot] = r;
                values[slot] = v;
                next[c] += 1;
            }
        }
        SparseMatrix { rows: self.cols, cols: self.rows, row_ptr, indices, values }
    }

    /// Converts to a dense matrix (used by the direct solvers).
    #[must_use]
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (c, v) in self.row_entries(i) {
                d[(i, c)] += v;
            }
        }
        d
    }

    /// Sum of each row (for generator matrices this should be ~0).
    #[must_use]
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row_entries(i).map(|(_, v)| v).sum()).collect()
    }

    /// Largest absolute diagonal entry (the uniformization rate bound).
    pub fn max_abs_diagonal(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i).abs()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact equality asserts deterministic arithmetic
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 2.0), (0, 0, -2.0), (1, 0, 1.0), (1, 1, -1.0), (2, 2, 0.0)],
        )
    }

    #[test]
    fn triplets_compress_and_drop_zeros() {
        let m = sample();
        assert_eq!(m.nnz(), 4); // the explicit zero is dropped
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.get(2, 0), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn vec_mul_matches_dense() {
        let m = sample();
        let v = vec![0.2, 0.3, 0.5];
        let sparse = m.vec_mul(&v);
        let dense = m.to_dense().vec_mul(&v);
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let v = vec![1.0, -1.0, 2.0];
        let sparse = m.mul_vec(&v);
        let dense = m.to_dense().mul_vec(&v);
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn vec_mul_into_matches_vec_mul_bitwise() {
        let m = sample();
        let v = vec![0.2, 0.3, 0.5];
        let fresh = m.vec_mul(&v);
        // A dirty buffer must be fully overwritten, not accumulated into.
        let mut out = vec![7.0; 3];
        m.vec_mul_into(&v, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    fn mul_vec_into_matches_mul_vec_bitwise() {
        let m = sample();
        let v = vec![1.0, -1.0, 2.0];
        let fresh = m.mul_vec(&v);
        let mut out = vec![-3.0; 3];
        m.mul_vec_into(&v, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    #[should_panic(expected = "output dimension mismatch")]
    fn vec_mul_into_rejects_short_buffer() {
        let m = sample();
        let mut out = vec![0.0; 2];
        m.vec_mul_into(&[0.0; 3], &mut out);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), m.cols());
        assert_eq!(t.cols(), m.rows());
        assert_eq!(t.nnz(), m.nnz());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                assert_eq!(t.get(j, i), m.get(i, j), "({i},{j})");
            }
        }
        // Double transpose round-trips exactly.
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_of_rectangular_matrix() {
        let m = SparseMatrix::from_triplets(2, 4, &[(0, 3, 1.5), (1, 0, -2.0), (1, 3, 0.25)]);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (4, 2));
        assert_eq!(t.get(3, 0), 1.5);
        assert_eq!(t.get(0, 1), -2.0);
        assert_eq!(t.get(3, 1), 0.25);
    }

    #[test]
    fn row_sums_of_generator_are_zero() {
        let m = sample();
        let sums = m.row_sums();
        assert!(sums[0].abs() < 1e-15);
        assert!(sums[1].abs() < 1e-15);
        assert!(sums[2].abs() < 1e-15);
    }

    #[test]
    fn max_abs_diagonal() {
        let m = sample();
        assert_eq!(m.max_abs_diagonal(), 2.0);
    }

    #[test]
    fn sorted_fast_path_matches_unsorted_slow_path() {
        let sorted = [(0, 0, -2.0), (0, 1, 2.0), (1, 0, 1.0), (1, 1, -1.0), (2, 2, 0.0)];
        let mut unsorted = sorted;
        unsorted.reverse();
        let a = SparseMatrix::from_triplets(3, 3, &sorted);
        let b = SparseMatrix::from_triplets(3, 3, &unsorted);
        assert_eq!(a, b);
        assert_eq!(a.nnz(), 4);
    }

    #[test]
    fn trailing_empty_rows_have_valid_pointers() {
        let m = SparseMatrix::from_triplets(4, 4, &[(1, 2, 5.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row_entries(0).count(), 0);
        assert_eq!(m.row_entries(2).count(), 0);
        assert_eq!(m.row_entries(3).count(), 0);
    }

    #[test]
    fn empty_matrix() {
        let m = SparseMatrix::from_triplets(0, 0, &[]);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.nnz(), 0);
    }
}
