//! Sensitivity of steady-state measures to transition rates.
//!
//! RAScad offers "graphical output and parametric analysis capability".
//! Parametric sweeps re-solve the model; this module supplements them
//! with *derivatives*: how fast the stationary distribution (and hence
//! availability) moves when one transition rate changes. The derivative
//! solves the linear system obtained by differentiating the balance
//! equations: `(dπ/dθ)·Q = −π·(dQ/dθ)` with `Σ dπ/dθ = 0`.

use crate::ctmc::{Ctmc, StateId};
use crate::dense::DenseMatrix;
use crate::error::MarkovError;

/// Derivative of the stationary distribution with respect to the rate of
/// the transition `from -> to`.
///
/// Returns `dπ/dθ` where `θ` is the rate of the given edge (the edge
/// need not currently exist; a zero-rate edge's derivative describes the
/// effect of introducing it).
///
/// # Errors
///
/// * [`MarkovError::UnknownState`] for out-of-range endpoints.
/// * [`MarkovError::InvalidOption`] for `from == to`.
/// * Steady-state solver errors for reducible/singular chains.
pub fn stationary_derivative(
    chain: &Ctmc,
    pi: &[f64],
    from: StateId,
    to: StateId,
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.len();
    if from >= n {
        return Err(MarkovError::UnknownState { id: from, len: n });
    }
    if to >= n {
        return Err(MarkovError::UnknownState { id: to, len: n });
    }
    if from == to {
        return Err(MarkovError::InvalidOption { what: "derivative of a self-loop".into() });
    }
    assert_eq!(pi.len(), n, "pi length mismatch");

    // v = pi * dQ with dQ = e_from (e_to - e_from)^T.
    let mut v = vec![0.0; n];
    v[to] += pi[from];
    v[from] -= pi[from];

    // Solve x * Q = -v with sum(x) = 0, i.e. Q^T x^T = -v^T with the
    // last balance equation replaced by the normalization row.
    let q = chain.generator().to_dense();
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = q[(j, i)];
        }
    }
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b: Vec<f64> = v.iter().map(|x| -x).collect();
    b[n - 1] = 0.0;
    a.solve(&b)
}

/// Derivative of the steady-state expected reward (availability) with
/// respect to the rate of `from -> to`.
///
/// # Errors
///
/// Propagates [`stationary_derivative`] errors.
pub fn availability_derivative(
    chain: &Ctmc,
    pi: &[f64],
    from: StateId,
    to: StateId,
) -> Result<f64, MarkovError> {
    let dpi = stationary_derivative(chain, pi, from, to)?;
    Ok(dpi.iter().zip(chain.states()).map(|(d, s)| d * s.reward).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::{CtmcBuilder, SteadyStateMethod};

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, lambda);
        b.add_transition(down, up, mu);
        b.build().unwrap()
    }

    #[test]
    fn matches_closed_form_two_state() {
        // A = mu/(l+mu); dA/dl = -mu/(l+mu)^2 ; dA/dmu = l/(l+mu)^2.
        let (l, mu) = (0.3, 1.7);
        let c = two_state(l, mu);
        let pi = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let da_dl = availability_derivative(&c, &pi, 0, 1).unwrap();
        let da_dmu = availability_derivative(&c, &pi, 1, 0).unwrap();
        let s = l + mu;
        assert!((da_dl + mu / (s * s)).abs() < 1e-12);
        assert!((da_dmu - l / (s * s)).abs() < 1e-12);
    }

    #[test]
    fn matches_finite_difference_on_random_chain() {
        let mut b = CtmcBuilder::new();
        for i in 0..4 {
            b.add_state(format!("s{i}"), if i < 2 { 1.0 } else { 0.0 });
        }
        let mut rates = Vec::new();
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    let r = 0.1 + ((i * 4 + j) as f64) * 0.13;
                    rates.push((i, j, r));
                }
            }
        }
        for &(i, j, r) in &rates {
            b.add_transition(i, j, r);
        }
        let c = b.build().unwrap();
        let pi = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let a0 = c.expected_reward(&pi);

        let h = 1e-7;
        for &(i, j, r) in &rates {
            let analytic = availability_derivative(&c, &pi, i, j).unwrap();
            // Rebuild with a perturbed rate.
            let mut b2 = CtmcBuilder::new();
            for k in 0..4 {
                b2.add_state(format!("s{k}"), if k < 2 { 1.0 } else { 0.0 });
            }
            for &(x, y, rr) in &rates {
                let rr = if (x, y) == (i, j) { r + h } else { rr };
                b2.add_transition(x, y, rr);
            }
            let c2 = b2.build().unwrap();
            let pi2 = c2.steady_state(SteadyStateMethod::Gth).unwrap();
            let fd = (c2.expected_reward(&pi2) - a0) / h;
            assert!(
                (analytic - fd).abs() < 1e-4 * (1.0 + analytic.abs()),
                "edge ({i},{j}): analytic {analytic} vs fd {fd}"
            );
        }
    }

    #[test]
    fn derivative_sums_to_zero() {
        let c = two_state(0.2, 0.9);
        let pi = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let d = stationary_derivative(&c, &pi, 0, 1).unwrap();
        assert!(d.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn bad_edges_rejected() {
        let c = two_state(0.2, 0.9);
        let pi = c.steady_state(SteadyStateMethod::Gth).unwrap();
        assert!(stationary_derivative(&c, &pi, 0, 0).is_err());
        assert!(stationary_derivative(&c, &pi, 0, 9).is_err());
        assert!(stationary_derivative(&c, &pi, 9, 0).is_err());
    }
}
