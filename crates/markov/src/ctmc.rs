//! Labelled continuous-time Markov chains with reward rates.

use crate::dense::DenseMatrix;
use crate::error::MarkovError;
use crate::gth;
use crate::matrix::SparseMatrix;

/// Identifier of a state inside one [`Ctmc`] (a dense index).
pub type StateId = usize;

/// Total matrix-vector work the default power-iteration budget spreads
/// over a chain: `budget ≈ POWER_WORK_BUDGET / states`, floored at
/// [`MIN_POWER_ITERATIONS`] so large chains still get a usable budget
/// instead of a spuriously tiny (or zero) one.
pub const POWER_WORK_BUDGET: usize = 50_000_000;

/// Floor of the default power-iteration budget for chains below
/// [`LARGE_CHAIN_STATES`].
pub const MIN_POWER_ITERATIONS: usize = 1_000;

/// Chains with at least this many states count as *large*: the default
/// power budget drops to [`MIN_LARGE_POWER_ITERATIONS`] so a stalled
/// power rung fails over to the sparse iterative rung in seconds instead
/// of spinning a generous floor's worth of `O(nnz)` sweeps against the
/// wall clock.
pub const LARGE_CHAIN_STATES: usize = 10_000;

/// Floor of the default power-iteration budget for chains at or above
/// [`LARGE_CHAIN_STATES`]. Power is a fallback at that size — the sparse
/// Gauss–Seidel rung is the primary — so the floor only needs to catch
/// easy chains, not grind stiff ones.
pub const MIN_LARGE_POWER_ITERATIONS: usize = 64;

/// Cooperative cancellation handle shared between a request owner and
/// the solver hot loops.
///
/// A token is a cloneable flag plus an optional absolute deadline. The
/// owner calls [`cancel`](CancelToken::cancel) (or lets the deadline
/// pass); the solvers poll [`is_cancelled`](CancelToken::is_cancelled)
/// at the same cadence as their wall-clock checks and abandon the
/// attempt with the typed [`MarkovError::Cancelled`] — which, unlike
/// `Timeout`, is *not* retryable, so a cancelled request exits the
/// whole fallback ladder immediately instead of burning the remaining
/// rungs.
///
/// Polling an atomic is cheap enough for the check cadences in use
/// (every 1024 power iterations, every 32 GTH pivots, once per sparse
/// sweep); `Instant::now()` is only taken when a deadline is set.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: std::sync::Arc<std::sync::atomic::AtomicBool>,
    deadline: Option<std::time::Instant>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that reports cancelled once `deadline` has passed, in
    /// addition to explicit [`cancel`](CancelToken::cancel) calls.
    #[must_use]
    pub fn with_deadline(deadline: std::time::Instant) -> Self {
        CancelToken { flag: std::sync::Arc::default(), deadline: Some(deadline) }
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether the owner cancelled or the deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(std::sync::atomic::Ordering::Acquire)
            || self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// The absolute deadline, when one was set at construction.
    #[must_use]
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }
}

/// Tokens compare by identity (same shared flag), not by state — two
/// independently created tokens are never equal, so caching layers that
/// compare options treat differently-cancellable requests as distinct.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        std::sync::Arc::ptr_eq(&self.flag, &other.flag) && self.deadline == other.deadline
    }
}

/// Budgets for the iterative and direct steady-state solvers.
///
/// Every solve attempt is bounded twice: by an iteration budget (the
/// deterministic bound) and by a wall-clock budget (the robustness
/// bound — a stiff chain must fail *typed*, with
/// [`MarkovError::Timeout`], instead of hanging a worker). The
/// wall-clock default is generous enough that well-posed RAScad models
/// never hit it, keeping results independent of host speed. A third,
/// externally-owned bound — [`CancelToken`] — lets a long-lived caller
/// (the serve daemon) abort a solve mid-flight.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Power-iteration budget; `None` scales [`POWER_WORK_BUDGET`] by
    /// the chain size (see [`SolveOptions::power_iteration_budget`]).
    pub max_iterations: Option<usize>,
    /// Power-iteration convergence tolerance on the iterate delta.
    pub tolerance: f64,
    /// Per-attempt wall-clock budget; `None` disables the clock.
    pub wall_clock: Option<std::time::Duration>,
    /// Cooperative cancellation token; `None` means uncancellable.
    /// Checked at the same cadence as the wall clock in every
    /// iterative loop; trips [`MarkovError::Cancelled`].
    pub cancel: Option<CancelToken>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_iterations: None,
            tolerance: 1e-14,
            wall_clock: Some(std::time::Duration::from_secs(30)),
            cancel: None,
        }
    }
}

impl SolveOptions {
    /// The power-iteration budget for an `n`-state chain: the explicit
    /// [`max_iterations`](Self::max_iterations) when set, else the
    /// work-scaled default clamped to a state-count-aware floor —
    /// [`MIN_POWER_ITERATIONS`] for ordinary chains,
    /// [`MIN_LARGE_POWER_ITERATIONS`] at or above
    /// [`LARGE_CHAIN_STATES`], where each iteration is expensive and the
    /// sparse rung is the better escape hatch than a long grind.
    #[must_use]
    pub fn power_iteration_budget(&self, n: usize) -> usize {
        if let Some(explicit) = self.max_iterations {
            return explicit;
        }
        let floor =
            if n >= LARGE_CHAIN_STATES { MIN_LARGE_POWER_ITERATIONS } else { MIN_POWER_ITERATIONS };
        (POWER_WORK_BUDGET / n.max(1)).max(floor)
    }

    /// The sweep budget for the sparse iterative rung: the explicit
    /// [`max_iterations`](Self::max_iterations) when set, else
    /// [`crate::iterative::SPARSE_SWEEP_BUDGET`]. Flat rather than
    /// work-scaled — a Gauss–Seidel sweep is already `O(nnz)`, so the
    /// per-sweep cost grows with the chain and the wall clock bounds the
    /// total.
    #[must_use]
    pub fn sparse_sweep_budget(&self) -> usize {
        self.max_iterations.unwrap_or(crate::iterative::SPARSE_SWEEP_BUDGET)
    }

    /// Whether `elapsed` has exhausted the wall-clock budget. Inclusive
    /// so a zero budget trips deterministically (used by the chaos
    /// tests to force timeouts without real waiting).
    pub(crate) fn over_budget(&self, elapsed: std::time::Duration) -> bool {
        self.wall_clock.is_some_and(|budget| elapsed >= budget)
    }

    /// Whether the caller's cancellation token has tripped (explicitly
    /// or via its deadline). Checked wherever the wall clock is.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Builds the typed cancellation error for an abandoned attempt.
    pub(crate) fn cancelled_error(&self, method: &'static str, iterations: usize) -> MarkovError {
        MarkovError::Cancelled { method, iterations }
    }

    /// Builds the typed timeout error for an attempt that ran out of
    /// wall clock.
    pub(crate) fn timeout_error(
        &self,
        method: &'static str,
        iterations: usize,
        elapsed: std::time::Duration,
    ) -> MarkovError {
        MarkovError::Timeout {
            method,
            iterations,
            elapsed_ms: elapsed.as_millis() as u64,
            budget_ms: self.wall_clock.unwrap_or_default().as_millis() as u64,
        }
    }
}

/// Which direct steady-state algorithm to use.
///
/// Two independent algorithms are provided so higher layers can
/// cross-validate results — mirroring the paper's validation of RAScad
/// against SHARPE and MEADEP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SteadyStateMethod {
    /// Grassmann–Taksar–Heyman elimination. Subtraction-free, hence
    /// numerically robust even for stiff availability models where rates
    /// span many orders of magnitude. The default.
    #[default]
    Gth,
    /// Dense LU factorization of the balance equations `pi * Q = 0`,
    /// `sum(pi) = 1` (one balance equation replaced by normalization).
    Lu,
    /// Power iteration on the uniformized DTMC `P = I + Q/Λ` until the
    /// iterates stop moving. Iterative rather than direct — the third
    /// independent numerical path used by the validation experiments.
    /// Slow for stiff chains; accuracy ~1e-12 in the iterate delta.
    Power,
    /// Sparse iterative solver: Gauss–Seidel sweeps on the inflow
    /// orientation of `Q`, with a damped-Jacobi fallback (see
    /// [`crate::iterative`]). `O(nnz)` per sweep and allocation-free in
    /// the inner loop, so it is the only rung that scales to the
    /// 10^5–10^6-state chains the k-out-of-n expansion produces; the
    /// core ladder selects it automatically by state count.
    Sparse,
}

/// One state of a chain: a label plus a reward rate.
///
/// In availability models the reward rate is 1 for operational ("up")
/// states and 0 for failure ("down") states, following the Markov-reward
/// formulation the paper cites (Goyal/Lavenberg/Trivedi; Reibman/Smith/
/// Trivedi).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct State {
    /// Human-readable label, e.g. `"PF1"` or `"ServiceError"`.
    pub label: String,
    /// Non-negative reward rate; 1.0 = up, 0.0 = down.
    pub reward: f64,
}

/// A transition with its rate (per hour in RAScad models).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Exponential rate, must be positive and finite.
    pub rate: f64,
}

/// Incrementally builds a [`Ctmc`].
///
/// # Example
///
/// ```
/// use rascad_markov::CtmcBuilder;
///
/// # fn main() -> Result<(), rascad_markov::MarkovError> {
/// let mut b = CtmcBuilder::new();
/// let up = b.add_state("up", 1.0);
/// let down = b.add_state("down", 0.0);
/// b.add_transition(up, down, 0.001);
/// b.add_transition(down, up, 0.5);
/// let chain = b.build()?;
/// assert_eq!(chain.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CtmcBuilder {
    states: Vec<State>,
    transitions: Vec<Transition>,
}

impl CtmcBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state and returns its id.
    pub fn add_state(&mut self, label: impl Into<String>, reward: f64) -> StateId {
        self.states.push(State { label: label.into(), reward });
        self.states.len() - 1
    }

    /// Adds a transition `from -> to` with the given exponential `rate`.
    ///
    /// Zero-rate transitions are accepted and silently dropped at
    /// [`build`](Self::build) time, which lets generators emit optional
    /// edges (e.g. a `Pspf` branch with `Pspf = 0`) without special
    /// casing.
    pub fn add_transition(&mut self, from: StateId, to: StateId, rate: f64) -> &mut Self {
        self.transitions.push(Transition { from, to, rate });
        self
    }

    /// Number of states added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no states have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Validates and finalizes the chain.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::EmptyChain`] if there are no states.
    /// * [`MarkovError::UnknownState`] for out-of-range endpoints.
    /// * [`MarkovError::InvalidRate`] for negative/NaN/infinite rates.
    /// * [`MarkovError::InvalidReward`] for negative/NaN/infinite rewards.
    /// * [`MarkovError::SelfLoop`] for `from == to` transitions.
    pub fn build(&self) -> Result<Ctmc, MarkovError> {
        if self.states.is_empty() {
            return Err(MarkovError::EmptyChain);
        }
        let n = self.states.len();
        for (i, s) in self.states.iter().enumerate() {
            if !s.reward.is_finite() || s.reward < 0.0 {
                return Err(MarkovError::InvalidReward { state: i, reward: s.reward });
            }
        }
        let mut kept = Vec::with_capacity(self.transitions.len());
        for t in &self.transitions {
            if t.from >= n {
                return Err(MarkovError::UnknownState { id: t.from, len: n });
            }
            if t.to >= n {
                return Err(MarkovError::UnknownState { id: t.to, len: n });
            }
            if !t.rate.is_finite() || t.rate < 0.0 {
                return Err(MarkovError::InvalidRate { from: t.from, to: t.to, rate: t.rate });
            }
            if t.from == t.to {
                return Err(MarkovError::SelfLoop { state: t.from });
            }
            if t.rate > 0.0 {
                kept.push(*t);
            }
        }
        Ok(Ctmc { states: self.states.clone(), transitions: kept })
    }
}

/// A validated continuous-time Markov chain with reward rates.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ctmc {
    states: Vec<State>,
    transitions: Vec<Transition>,
}

impl Ctmc {
    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the chain has no states (never true for a built chain).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of (positive-rate) transitions.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The states in id order.
    #[must_use]
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The transitions in insertion order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Finds a state id by its label.
    #[must_use]
    pub fn state_by_label(&self, label: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.label == label)
    }

    /// The reward (row) vector indexed by state id.
    #[must_use]
    pub fn rewards(&self) -> Vec<f64> {
        self.states.iter().map(|s| s.reward).collect()
    }

    /// Ids of states with a strictly positive reward ("up" states).
    #[must_use]
    pub fn up_states(&self) -> Vec<StateId> {
        (0..self.len()).filter(|&i| self.states[i].reward > 0.0).collect()
    }

    /// Ids of states with zero reward ("down" states).
    #[must_use]
    pub fn down_states(&self) -> Vec<StateId> {
        (0..self.len()).filter(|&i| self.states[i].reward == 0.0).collect()
    }

    /// Builds the infinitesimal generator `Q` in sparse form
    /// (off-diagonal rates, diagonal = −(row sum)).
    #[must_use]
    pub fn generator(&self) -> SparseMatrix {
        let n = self.len();
        let mut trips = Vec::with_capacity(self.transitions.len() * 2);
        let mut diag = vec![0.0; n];
        for t in &self.transitions {
            trips.push((t.from, t.to, t.rate));
            diag[t.from] += t.rate;
        }
        for (i, d) in diag.iter().enumerate() {
            if *d > 0.0 {
                trips.push((i, i, -d));
            }
        }
        SparseMatrix::from_triplets(n, n, &trips)
    }

    /// Total exit rate of each state.
    #[must_use]
    pub fn exit_rates(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        for t in &self.transitions {
            out[t.from] += t.rate;
        }
        out
    }

    /// Checks that every state can reach every other state (strong
    /// connectivity of the transition digraph), which guarantees a unique
    /// stationary distribution.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Reducible`] naming a state outside the
    /// single strongly-connected component.
    pub fn check_irreducible(&self) -> Result<(), MarkovError> {
        let n = self.len();
        let mut fwd = vec![Vec::new(); n];
        let mut bwd = vec![Vec::new(); n];
        for t in &self.transitions {
            fwd[t.from].push(t.to);
            bwd[t.to].push(t.from);
        }
        let reach = |adj: &Vec<Vec<usize>>| {
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(s) = stack.pop() {
                for &d in &adj[s] {
                    if !seen[d] {
                        seen[d] = true;
                        stack.push(d);
                    }
                }
            }
            seen
        };
        let f = reach(&fwd);
        let b = reach(&bwd);
        for i in 0..n {
            if !(f[i] && b[i]) {
                return Err(MarkovError::Reducible { state: i });
            }
        }
        Ok(())
    }

    /// Solves for the stationary distribution `pi` with `pi * Q = 0`,
    /// `sum(pi) = 1`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::Reducible`] if the chain is not irreducible.
    /// * [`MarkovError::Singular`] if the LU path hits a singular system.
    pub fn steady_state(&self, method: SteadyStateMethod) -> Result<Vec<f64>, MarkovError> {
        self.steady_state_with(method, &SolveOptions::default())
    }

    /// [`steady_state`](Self::steady_state) with explicit iteration and
    /// wall-clock budgets.
    ///
    /// # Errors
    ///
    /// In addition to the `steady_state` errors:
    ///
    /// * [`MarkovError::NotConverged`] if the power rung exhausts its
    ///   iteration budget.
    /// * [`MarkovError::Timeout`] if the attempt exceeds
    ///   [`SolveOptions::wall_clock`].
    pub fn steady_state_with(
        &self,
        method: SteadyStateMethod,
        options: &SolveOptions,
    ) -> Result<Vec<f64>, MarkovError> {
        if self.len() == 1 {
            return Ok(vec![1.0]);
        }
        self.check_irreducible()?;
        match method {
            SteadyStateMethod::Gth => gth::stationary_gth_with(self, options),
            SteadyStateMethod::Lu => self.steady_state_lu(options),
            SteadyStateMethod::Power => self.steady_state_power(options),
            SteadyStateMethod::Sparse => crate::iterative::steady_state_sparse(self, options),
        }
    }

    fn steady_state_power(&self, options: &SolveOptions) -> Result<Vec<f64>, MarkovError> {
        let tolerance = options.tolerance;
        let mut span = rascad_obs::span("markov.power");
        span.record("states", self.len());
        let uni = crate::transient::uniformize(self);
        let n = self.len();
        let mut pi = vec![1.0 / n as f64; n];
        // Ping-pong buffer for the SpMV so the hot loop allocates
        // nothing per iteration.
        let mut next = vec![0.0; n];
        // Uniformization keeps diagonals positive, so the DTMC is
        // aperiodic and plain power iteration converges; the iteration
        // budget guards against extreme stiffness and is floored so
        // large chains never get a degenerate budget.
        let max_iter = options.power_iteration_budget(n);
        // Checking the clock every iteration would dominate small
        // chains, so it is sampled; the mask keeps the check cadence a
        // cheap bitwise test.
        const CLOCK_MASK: usize = 1024 - 1;
        let start = std::time::Instant::now();
        let mut trace = rascad_obs::trace::begin("power", "residual", n);
        let mut residual = f64::INFINITY;
        for iter in 1..=max_iter {
            if iter & CLOCK_MASK == 0 {
                if options.cancelled() {
                    span.record("iterations", iter);
                    trace.finish("cancelled");
                    return Err(options.cancelled_error("power", iter));
                }
                let elapsed = start.elapsed();
                if options.over_budget(elapsed) {
                    span.record("iterations", iter);
                    trace.finish("timeout");
                    return Err(options.timeout_error("power", iter, elapsed));
                }
            }
            uni.dtmc.vec_mul_into(&pi, &mut next);
            residual = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pi, &mut next);
            trace.step(iter, residual);
            if residual < tolerance {
                let z: f64 = pi.iter().sum();
                for p in &mut pi {
                    *p /= z;
                }
                span.record("iterations", iter);
                span.record("residual", residual);
                rascad_obs::record_value_with(
                    "markov.iterations",
                    &[("method", "power")],
                    iter as f64,
                );
                rascad_obs::record_value_with("markov.residual", &[("method", "power")], residual);
                rascad_obs::counter_with("markov.solves", &[("method", "power")], 1);
                trace.finish("converged");
                return Ok(pi);
            }
        }
        span.record("iterations", max_iter);
        span.record("residual", residual);
        // A non-converged rung still reports its full telemetry — the
        // fallback ladder's decision to abandon this method should be
        // as observable as a success.
        rascad_obs::record_value_with("markov.iterations", &[("method", "power")], max_iter as f64);
        rascad_obs::record_value_with("markov.residual", &[("method", "power")], residual);
        rascad_obs::flight_event(
            "markov.power.not_converged",
            residual,
            &format!("{max_iter} iterations, residual {residual:.3e} vs tolerance {tolerance:.1e}"),
        );
        trace.finish("not-converged");
        Err(MarkovError::NotConverged {
            method: "power",
            iterations: max_iter,
            residual,
            tolerance,
        })
    }

    fn steady_state_lu(&self, options: &SolveOptions) -> Result<Vec<f64>, MarkovError> {
        // The dense factorization is uninterruptible, so the budget and
        // cancellation token are only honored up front: a zero (or
        // already-spent) budget fails typed instead of starting work it
        // cannot abandon.
        if options.cancelled() {
            return Err(options.cancelled_error("lu", 0));
        }
        if options.over_budget(std::time::Duration::ZERO) {
            return Err(options.timeout_error("lu", 0, std::time::Duration::ZERO));
        }
        let n = self.len();
        // Solve Q^T x = 0 with the last equation replaced by sum(x) = 1.
        let q = self.generator().to_dense();
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = q[(j, i)];
            }
        }
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let mut pi = a.solve(&b)?;
        // Clamp tiny negatives from roundoff and renormalize.
        let mut sum = 0.0;
        for p in &mut pi {
            if *p < 0.0 && *p > -1e-9 {
                *p = 0.0;
            }
            sum += *p;
        }
        if !(sum.is_finite() && sum > 0.0) {
            return Err(MarkovError::Singular);
        }
        for p in &mut pi {
            *p /= sum;
        }
        Ok(pi)
    }

    /// Expected steady-state reward `sum(pi_i * r_i)`; with 0/1 rewards
    /// this is the steady-state availability.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.len()`.
    #[must_use]
    pub fn expected_reward(&self, pi: &[f64]) -> f64 {
        assert_eq!(pi.len(), self.len(), "dimension mismatch");
        pi.iter().zip(&self.states).map(|(p, s)| p * s.reward).sum()
    }

    /// Steady-state system *failure rate*: the rate of up→down
    /// transitions, `sum_{i up} pi_i * sum_{j down} q_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.len()`.
    #[must_use]
    pub fn failure_rate(&self, pi: &[f64]) -> f64 {
        assert_eq!(pi.len(), self.len(), "dimension mismatch");
        self.boundary_flow(pi, true)
    }

    /// Steady-state system *recovery rate*: the rate of down→up
    /// transitions.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.len()`.
    #[must_use]
    pub fn recovery_rate(&self, pi: &[f64]) -> f64 {
        assert_eq!(pi.len(), self.len(), "dimension mismatch");
        self.boundary_flow(pi, false)
    }

    fn boundary_flow(&self, pi: &[f64], up_to_down: bool) -> f64 {
        let up: Vec<bool> = self.states.iter().map(|s| s.reward > 0.0).collect();
        self.transitions
            .iter()
            .filter(|t| if up_to_down { up[t.from] && !up[t.to] } else { !up[t.from] && up[t.to] })
            .map(|t| pi[t.from] * t.rate)
            .sum()
    }

    /// Mean time between system failures implied by the stationary
    /// distribution: `A / failure_rate` is mean up time; this returns the
    /// full cycle `1 / failure_rate`.
    ///
    /// Returns `f64::INFINITY` when the failure rate is zero.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.len()`.
    #[must_use]
    pub fn mtbf(&self, pi: &[f64]) -> f64 {
        let fr = self.failure_rate(pi);
        if fr > 0.0 {
            1.0 / fr
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new();
        let up = b.add_state("up", 1.0);
        let down = b.add_state("down", 0.0);
        b.add_transition(up, down, lambda);
        b.add_transition(down, up, mu);
        b.build().unwrap()
    }

    #[test]
    fn two_state_availability_closed_form() {
        let (l, m) = (2e-4, 0.25);
        let c = two_state(l, m);
        for method in [SteadyStateMethod::Gth, SteadyStateMethod::Lu] {
            let pi = c.steady_state(method).unwrap();
            let a = c.expected_reward(&pi);
            assert!((a - m / (l + m)).abs() < 1e-13, "{method:?}");
        }
    }

    #[test]
    fn failure_and_recovery_rates_balance() {
        let c = two_state(1e-3, 0.1);
        let pi = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let f = c.failure_rate(&pi);
        let r = c.recovery_rate(&pi);
        // In steady state the up->down flow equals the down->up flow.
        assert!((f - r).abs() < 1e-15);
        assert!((f - pi[0] * 1e-3).abs() < 1e-18);
        assert!((c.mtbf(&pi) - 1.0 / f).abs() < 1e-6);
    }

    #[test]
    fn empty_chain_rejected() {
        assert_eq!(CtmcBuilder::new().build().unwrap_err(), MarkovError::EmptyChain);
    }

    #[test]
    fn bad_transitions_rejected() {
        let mut b = CtmcBuilder::new();
        let s = b.add_state("s", 1.0);
        b.add_transition(s, 7, 1.0);
        assert!(matches!(b.build().unwrap_err(), MarkovError::UnknownState { id: 7, .. }));

        let mut b = CtmcBuilder::new();
        let a = b.add_state("a", 1.0);
        let c = b.add_state("c", 0.0);
        b.add_transition(a, c, -2.0);
        assert!(matches!(b.build().unwrap_err(), MarkovError::InvalidRate { .. }));

        let mut b = CtmcBuilder::new();
        let a = b.add_state("a", 1.0);
        b.add_state("b", 0.0);
        b.add_transition(a, a, 1.0);
        assert!(matches!(b.build().unwrap_err(), MarkovError::SelfLoop { state: 0 }));
    }

    #[test]
    fn bad_reward_rejected() {
        let mut b = CtmcBuilder::new();
        b.add_state("s", -1.0);
        assert!(matches!(b.build().unwrap_err(), MarkovError::InvalidReward { .. }));
    }

    #[test]
    fn zero_rate_transitions_dropped() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a", 1.0);
        let c = b.add_state("b", 0.0);
        b.add_transition(a, c, 0.0);
        b.add_transition(a, c, 1.0);
        b.add_transition(c, a, 1.0);
        let chain = b.build().unwrap();
        assert_eq!(chain.transition_count(), 2);
    }

    #[test]
    fn reducible_chain_detected() {
        let mut b = CtmcBuilder::new();
        let a = b.add_state("a", 1.0);
        let c = b.add_state("b", 0.0);
        b.add_transition(a, c, 1.0); // no way back
        let chain = b.build().unwrap();
        assert!(matches!(
            chain.steady_state(SteadyStateMethod::Gth).unwrap_err(),
            MarkovError::Reducible { .. }
        ));
    }

    #[test]
    fn single_state_chain_is_trivial() {
        let mut b = CtmcBuilder::new();
        b.add_state("only", 1.0);
        let chain = b.build().unwrap();
        assert_eq!(chain.steady_state(SteadyStateMethod::Lu).unwrap(), vec![1.0]);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let c = two_state(0.3, 0.7);
        for s in c.generator().row_sums() {
            assert!(s.abs() < 1e-15);
        }
    }

    #[test]
    fn state_lookup_by_label() {
        let c = two_state(1.0, 2.0);
        assert_eq!(c.state_by_label("down"), Some(1));
        assert_eq!(c.state_by_label("nope"), None);
        assert_eq!(c.up_states(), vec![0]);
        assert_eq!(c.down_states(), vec![1]);
    }

    #[test]
    fn gth_and_lu_agree_on_cyclic_chain() {
        // 4-state cycle with asymmetric rates.
        let mut b = CtmcBuilder::new();
        for i in 0..4 {
            b.add_state(format!("s{i}"), if i < 2 { 1.0 } else { 0.0 });
        }
        let rates = [0.5, 1.5, 2.5, 3.5];
        for (i, &rate) in rates.iter().enumerate() {
            b.add_transition(i, (i + 1) % 4, rate);
        }
        let c = b.build().unwrap();
        let g = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let l = c.steady_state(SteadyStateMethod::Lu).unwrap();
        for (a, b) in g.iter().zip(&l) {
            assert!((a - b).abs() < 1e-12);
        }
        // pi_i proportional to 1/rate_i for a cycle.
        let z: f64 = rates.iter().map(|r| 1.0 / r).sum();
        for (i, &r) in rates.iter().enumerate() {
            assert!((g[i] - (1.0 / r) / z).abs() < 1e-12);
        }
    }

    #[test]
    fn power_iteration_agrees_with_direct_methods() {
        let c = two_state(2e-3, 0.4);
        let gth = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let pow = c.steady_state(SteadyStateMethod::Power).unwrap();
        for (a, b) in gth.iter().zip(&pow) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }

        // A bigger random-ish chain.
        let mut b = CtmcBuilder::new();
        for i in 0..6 {
            b.add_state(format!("s{i}"), (i % 2) as f64);
        }
        for i in 0..6usize {
            b.add_transition(i, (i + 1) % 6, 0.2 + i as f64 * 0.15);
            b.add_transition(i, (i + 3) % 6, 0.05 + i as f64 * 0.02);
        }
        let c = b.build().unwrap();
        let gth = c.steady_state(SteadyStateMethod::Gth).unwrap();
        let pow = c.steady_state(SteadyStateMethod::Power).unwrap();
        for (a, b) in gth.iter().zip(&pow) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn power_iteration_records_convergence_telemetry() {
        use rascad_obs::{Event, Sink};
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct Capture(Arc<Mutex<Vec<Event>>>);
        impl Sink for Capture {
            fn event(&mut self, event: &Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }

        // This is the only test in the crate that installs the global
        // obs subscriber, so no serialization lock is needed; concurrent
        // tests may add unrelated metrics, which the asserts tolerate.
        let cap = Capture::default();
        rascad_obs::install(vec![Box::new(cap.clone())]);
        let pi = two_state(2e-3, 0.4).steady_state(SteadyStateMethod::Power).unwrap();
        rascad_obs::drain();
        rascad_obs::uninstall();
        assert_eq!(pi.len(), 2);

        let events = cap.0.lock().unwrap().clone();
        let (counters, values) = events
            .iter()
            .find_map(|e| match e {
                Event::Metrics { counters, values, .. } => Some((counters.clone(), values.clone())),
                _ => None,
            })
            .expect("drain emits metrics");
        assert!(counters.iter().any(|(n, v)| *n == "markov.solves{method=\"power\"}" && *v >= 1));
        let iters = values.iter().find(|(n, _)| *n == "markov.iterations{method=\"power\"}");
        assert!(iters.is_some_and(|(_, s)| s.count >= 1 && s.min >= 1.0), "{values:?}");
        let resid = values.iter().find(|(n, _)| *n == "markov.residual{method=\"power\"}");
        assert!(resid.is_some_and(|(_, s)| s.max < 1e-13), "{values:?}");
    }

    #[test]
    fn power_budget_is_state_count_aware() {
        let opts = SolveOptions::default();
        // Small chains get the work-scaled budget...
        assert_eq!(opts.power_iteration_budget(2), POWER_WORK_BUDGET / 2);
        // ...ordinary chains stay work-scaled (the generous floor never
        // binds below LARGE_CHAIN_STATES because 50M/n is still big)...
        assert_eq!(
            opts.power_iteration_budget(LARGE_CHAIN_STATES - 1),
            POWER_WORK_BUDGET / (LARGE_CHAIN_STATES - 1)
        );
        // ...but large chains get only the small floor, so a stalled
        // power rung hands over to the sparse rung quickly instead of
        // grinding 1000 expensive sweeps.
        assert_eq!(opts.power_iteration_budget(100_000_000), MIN_LARGE_POWER_ITERATIONS);
        assert_eq!(opts.power_iteration_budget(1_000_000), MIN_LARGE_POWER_ITERATIONS);
        // At the boundary the work-scaled value still wins while it
        // exceeds the floor.
        assert_eq!(opts.power_iteration_budget(LARGE_CHAIN_STATES), 5_000);
        // Degenerate n=0 guards against division by zero.
        assert_eq!(opts.power_iteration_budget(0), POWER_WORK_BUDGET);
        // An explicit budget wins outright.
        let explicit = SolveOptions { max_iterations: Some(7), ..SolveOptions::default() };
        assert_eq!(explicit.power_iteration_budget(100_000_000), 7);
        assert_eq!(explicit.sparse_sweep_budget(), 7);
        assert_eq!(opts.sparse_sweep_budget(), crate::iterative::SPARSE_SWEEP_BUDGET);
    }

    #[test]
    fn power_respects_explicit_iteration_budget() {
        let opts = SolveOptions {
            max_iterations: Some(3),
            tolerance: 0.0, // unreachable: force budget exhaustion
            wall_clock: None,
            ..SolveOptions::default()
        };
        let err = two_state(0.1, 0.9).steady_state_with(SteadyStateMethod::Power, &opts);
        match err {
            Err(MarkovError::NotConverged { method, iterations, .. }) => {
                assert_eq!(method, "power");
                assert_eq!(iterations, 3);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn zero_wall_clock_budget_times_out_typed() {
        let opts = SolveOptions {
            max_iterations: Some(1_000_000),
            tolerance: 0.0, // keep power iterating until the clock check
            wall_clock: Some(std::time::Duration::ZERO),
            ..SolveOptions::default()
        };
        let c = two_state(0.1, 0.9);
        for method in [SteadyStateMethod::Power, SteadyStateMethod::Lu, SteadyStateMethod::Gth] {
            match c.steady_state_with(method, &opts) {
                Err(MarkovError::Timeout { budget_ms: 0, .. }) => {}
                other => panic!("expected Timeout for {method:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn pre_cancelled_token_aborts_every_method_typed() {
        let token = CancelToken::new();
        token.cancel();
        let opts = SolveOptions {
            max_iterations: Some(1_000_000),
            tolerance: 0.0, // keep iterating until the cancel check
            wall_clock: None,
            cancel: Some(token),
        };
        let c = two_state(0.1, 0.9);
        for method in [
            SteadyStateMethod::Power,
            SteadyStateMethod::Lu,
            SteadyStateMethod::Gth,
            SteadyStateMethod::Sparse,
        ] {
            match c.steady_state_with(method, &opts) {
                Err(MarkovError::Cancelled { .. }) => {}
                other => panic!("expected Cancelled for {method:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn expired_deadline_counts_as_cancelled() {
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let token = CancelToken::with_deadline(past);
        assert!(token.is_cancelled());
        assert_eq!(token.deadline(), Some(past));
        let opts = SolveOptions {
            max_iterations: Some(1_000_000),
            tolerance: 0.0,
            wall_clock: None,
            cancel: Some(token),
        };
        match two_state(0.1, 0.9).steady_state_with(SteadyStateMethod::Power, &opts) {
            Err(MarkovError::Cancelled { method: "power", .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn cancel_tokens_compare_by_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, CancelToken::new());
        // Cancelling either clone is visible through the other.
        b.cancel();
        assert!(a.is_cancelled());
        // A live token without a deadline is not cancelled.
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn steady_state_with_defaults_matches_steady_state() {
        let c = two_state(2e-3, 0.4);
        for method in [
            SteadyStateMethod::Gth,
            SteadyStateMethod::Lu,
            SteadyStateMethod::Power,
            SteadyStateMethod::Sparse,
        ] {
            assert_eq!(
                c.steady_state(method).unwrap(),
                c.steady_state_with(method, &SolveOptions::default()).unwrap(),
            );
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let c = two_state(0.1, 0.9);
        let json = serde_json::to_string(&c).unwrap();
        let back: Ctmc = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
